//! # tea-exp
//!
//! The shared experiment engine behind every TEA harness.
//!
//! A run is a matrix of *cells* — one `(workload, core config, scheme
//! set, sampling interval, seed)` point each. Cells are shared-nothing:
//! each one owns its program, its core, and its observers, so the
//! engine fans them out across a scoped thread pool with no
//! synchronization beyond handing out indices — except one read-only
//! structure: a per-run [`TraceCache`] interprets each workload once
//! and every cell of that workload replays the shared
//! [`tea_isa::CapturedTrace`] (bit-identically; disable with
//! [`Engine::trace_cache`]). All observers of a cell
//! ride one [`tea_sim::core::Core::run`] pass (the paper's out-of-band
//! TraceDoctor methodology: every scheme samples the exact same
//! cycles).
//!
//! Results come back in cell order regardless of completion order, so
//! a parallel run is bit-identical to a serial one — the simulator and
//! profilers are deterministic, and nothing about scheduling leaks into
//! the numbers. [`RunResult::to_json`] serializes a machine-readable
//! artifact (schema `tea-experiment/v2`, see docs/INTERNALS.md);
//! [`RunResult::write_artifact`] drops it under `target/experiments/`
//! atomically (temp file + rename).
//!
//! The engine is fault-tolerant: each cell body runs under
//! `catch_unwind`, so a panicking cell becomes a [`CellStatus::Failed`]
//! outcome carrying a structured [`ExpError`] instead of tearing down
//! the pool; transient failures are retried with capped deterministic
//! backoff ([`Engine::max_retries`]); a per-cell cycle budget turns
//! runaway simulations into [`CellStatus::TimedOut`]
//! ([`Engine::cell_budget`]); and [`Engine::run_journaled`] +
//! [`Engine::resume`] checkpoint completed cells to a
//! `target/experiments/<name>.journal.jsonl` journal so an interrupted
//! sweep re-runs only missing or failed cells — the merged artifact is
//! bit-identical (over [`RunResult::deterministic_json`]) to an
//! uninterrupted run.
//!
//! Thread count: `RAYON_NUM_THREADS` (the conventional knob), then
//! `TEA_THREADS`, then the machine's available parallelism.

#![warn(missing_docs)]

pub mod artifact;
pub mod chaos;
pub mod error;
pub mod journal;
pub mod json;
pub mod progress;
pub mod trace_cache;

use std::collections::HashMap;
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use tea_core::golden::GoldenReference;
use tea_core::observers::{AnyObserver, ObserverSet};
use tea_core::pics::{Granularity, Pics, UnitMap};
use tea_core::pics_error;
use tea_core::sampling::SampleTimer;
use tea_core::schemes::Scheme;
use tea_core::tip::{TipProfile, TipProfiler};
use tea_isa::program::Program;
use tea_isa::CapturedTrace;
use tea_obs::{Level, Value};
use tea_sim::core::{Core, SimStats};
use tea_sim::psv::CommitState;
use tea_sim::{SimConfig, SimError};
use tea_workloads::Workload;

pub use chaos::{ChaosInjector, ObserverFault};
pub use error::ExpError;
pub use progress::{ProgressEvent, ProgressRecorder, ProgressSink, ProgressStream};
pub use trace_cache::TraceCache;

use chaos::ChaosObserver;

use trace_cache::GoldenCheckout;

use journal::{spec_fingerprint, Journal, JournalEntry};
use json::Json;

/// Every sampling scheme the engine can attach to a cell.
pub const ALL_SCHEMES: [Scheme; 6] = [
    Scheme::Tea,
    Scheme::NciTea,
    Scheme::Ibs,
    Scheme::Spe,
    Scheme::Ris,
    Scheme::TeaDispatchTagged,
];

/// The harnesses' default sampling interval (cycles). The paper samples
/// every 800 000 cycles over 10^11+-cycle runs; our runs are ~10^6–10^7
/// cycles, so the interval is scaled to keep the samples-per-instruction
/// density comparable (see DESIGN.md).
pub const DEFAULT_INTERVAL: u64 = 512;

/// Deterministic jitter seed shared by the harnesses.
pub const DEFAULT_SEED: u64 = 42;

/// One point of an experiment matrix: a program simulated under one
/// core configuration with one set of observers.
#[derive(Clone, Debug)]
pub struct CellSpec {
    /// Workload (or ad-hoc program) name, used in reports and JSON.
    pub workload: String,
    /// The program to simulate.
    pub program: Program,
    /// Human-readable name of the core configuration.
    pub config_name: String,
    /// The core configuration.
    pub config: SimConfig,
    /// Sampling interval in cycles (all schemes share one jittered
    /// timer sequence, so they fire in the same cycles).
    pub interval: u64,
    /// Jitter seed of the sampling timers.
    pub seed: u64,
    /// Sampling schemes to attach.
    pub schemes: Vec<Scheme>,
    /// Attach the exact golden reference (needed for error metrics).
    pub golden: bool,
    /// Attach the TIP baseline profiler.
    pub tip: bool,
    /// Per-cell cycle budget; a cell still running after this many
    /// simulated cycles is cut off as [`CellStatus::TimedOut`].
    /// Overrides [`Engine::cell_budget`] when set.
    pub budget: Option<u64>,
    /// Injected failure, for exercising the engine's fault tolerance.
    pub fault: Option<Fault>,
}

/// An injected cell failure, used by the fault-injection tests and the
/// CLI's `--inject-panic` smoke path. Faults fire before the simulation
/// pass, keyed on the engine's 1-based attempt counter, so a fault
/// injected "until attempt N" exercises the retry path deterministically.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Panic while the attempt number is below `n`
    /// (`PanicUntilAttempt(u32::MAX)` panics on every attempt).
    PanicUntilAttempt(u32),
    /// Fail with [`ExpError::Injected`] while the attempt number is
    /// below `n`.
    ErrorUntilAttempt(u32),
}

/// Terminal status of one cell in a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CellStatus {
    /// The cell completed and carries measurements.
    Ok,
    /// The cell failed (panic, rejected config, program fault, injected
    /// fault) after exhausting its retries.
    Failed,
    /// The cell exceeded its cycle budget.
    TimedOut,
    /// The cell never ran (fail-fast abort after an earlier failure).
    Skipped,
}

impl CellStatus {
    /// The status name used in artifacts and journals.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CellStatus::Ok => "ok",
            CellStatus::Failed => "failed",
            CellStatus::TimedOut => "timed-out",
            CellStatus::Skipped => "skipped",
        }
    }

    /// Parses an artifact/journal status name.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "ok" => Some(CellStatus::Ok),
            "failed" => Some(CellStatus::Failed),
            "timed-out" => Some(CellStatus::TimedOut),
            "skipped" => Some(CellStatus::Skipped),
            _ => None,
        }
    }
}

impl CellSpec {
    /// A cell with the default config, interval, seed and all schemes.
    #[must_use]
    pub fn new(workload: impl Into<String>, program: Program) -> Self {
        CellSpec {
            workload: workload.into(),
            program,
            config_name: "default".to_string(),
            config: SimConfig::default(),
            interval: DEFAULT_INTERVAL,
            seed: DEFAULT_SEED,
            schemes: ALL_SCHEMES.to_vec(),
            golden: true,
            tip: false,
            budget: None,
            fault: None,
        }
    }

    /// A cell for a named workload (clones its program).
    #[must_use]
    pub fn for_workload(w: &Workload) -> Self {
        CellSpec::new(w.name, w.program.clone())
    }

    /// Sets the core configuration (with a name for reports).
    #[must_use]
    pub fn config(mut self, name: impl Into<String>, config: SimConfig) -> Self {
        self.config_name = name.into();
        self.config = config;
        self
    }

    /// Sets the sampling interval.
    #[must_use]
    pub fn interval(mut self, interval: u64) -> Self {
        self.interval = interval;
        self
    }

    /// Sets the sampling jitter seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the scheme set.
    #[must_use]
    pub fn schemes(mut self, schemes: &[Scheme]) -> Self {
        self.schemes = schemes.to_vec();
        self
    }

    /// Attaches the TIP baseline.
    #[must_use]
    pub fn with_tip(mut self) -> Self {
        self.tip = true;
        self
    }

    /// Drops all observers: simulate for [`SimStats`] only.
    #[must_use]
    pub fn stats_only(mut self) -> Self {
        self.schemes.clear();
        self.golden = false;
        self.tip = false;
        self
    }

    /// Sets a per-cell cycle budget (see [`CellSpec::budget`]).
    #[must_use]
    pub fn budget(mut self, budget: u64) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Injects a failure (see [`Fault`]).
    #[must_use]
    pub fn fault(mut self, fault: Fault) -> Self {
        self.fault = Some(fault);
        self
    }
}

/// The measured outcome of one cell.
#[derive(Clone, Debug)]
pub struct CellResult {
    /// Position of the cell in the run's matrix.
    pub index: usize,
    /// The spec that produced this result (owns the program, so error
    /// metrics can build unit maps without reaching back to the caller).
    pub spec: CellSpec,
    /// Core statistics of the simulation pass.
    pub stats: SimStats,
    /// The exact reference, when `spec.golden` was set. Behind an
    /// `Arc`: cells of one `(program, config)` pair share one finished
    /// reference through the engine's trace cache, so a cell may hold
    /// the same allocation as its siblings.
    pub golden: Option<Arc<GoldenReference>>,
    /// The TIP baseline profile, when `spec.tip` was set.
    pub tip: Option<TipProfile>,
    /// Sampled PICS per scheme (in sample units).
    pub pics: HashMap<Scheme, Pics>,
    /// Samples taken per scheme.
    pub samples: HashMap<Scheme, u64>,
    /// Wall-clock time of the simulation pass.
    pub wall: Duration,
}

impl CellResult {
    /// The Section 4 error of `scheme` at `granularity`, or `None` if
    /// the cell ran without the golden reference or without the scheme.
    #[must_use]
    pub fn error(&self, scheme: Scheme, granularity: Granularity) -> Option<f64> {
        let golden = self.golden.as_ref()?;
        let pics = self.pics.get(&scheme)?;
        let units = UnitMap::new(&self.spec.program, granularity);
        Some(pics_error(pics, golden.pics(), scheme.event_set(), &units))
    }

    /// Simulated instructions per wall-clock second, in millions.
    #[must_use]
    pub fn sim_mips(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.stats.retired as f64 / secs / 1e6
        } else {
            0.0
        }
    }

    /// Samples taken across all schemes.
    #[must_use]
    pub fn total_samples(&self) -> u64 {
        self.samples.values().sum()
    }

    /// The measurement fields of the cell's artifact object (everything
    /// after the identity and status fields, which [`CellOutcome`]
    /// contributes).
    fn measurement_fields(&self) -> Vec<(&'static str, Json)> {
        let mut fields = vec![
            ("cycles", Json::UInt(self.stats.cycles)),
            ("instructions", Json::UInt(self.stats.retired)),
            ("ipc", Json::Num(self.stats.ipc())),
            (
                "state_cycles",
                Json::Obj(
                    CommitState::ALL
                        .iter()
                        .enumerate()
                        .map(|(i, s)| {
                            (s.name().to_string(), Json::UInt(self.stats.state_cycles[i]))
                        })
                        .collect(),
                ),
            ),
            ("squashes", Json::UInt(self.stats.squashes)),
            ("commit_flushes", Json::UInt(self.stats.commit_flushes)),
            ("mo_violations", Json::UInt(self.stats.mo_violations)),
            ("wall_seconds", Json::Num(self.wall.as_secs_f64())),
            ("sim_mips", Json::Num(self.sim_mips())),
        ];
        fields.push((
            "golden_total_cycles",
            self.golden
                .as_ref()
                .map_or(Json::Null, |g| Json::Num(g.pics().total())),
        ));
        // Iterate spec.schemes (not the HashMaps) so field order is
        // deterministic.
        fields.push((
            "samples",
            Json::Obj(
                self.spec
                    .schemes
                    .iter()
                    .map(|s| (s.name().to_string(), Json::UInt(self.samples[s])))
                    .collect(),
            ),
        ));
        if self.golden.is_some() {
            fields.push((
                "error_instruction",
                Json::Obj(
                    self.spec
                        .schemes
                        .iter()
                        .map(|s| {
                            let e = self.error(*s, Granularity::Instruction).unwrap_or(f64::NAN);
                            (s.name().to_string(), Json::Num(e))
                        })
                        .collect(),
                ),
            ));
        }
        fields
    }
}

/// Resolves the worker count: `RAYON_NUM_THREADS`, then `TEA_THREADS`,
/// then the machine's available parallelism.
#[must_use]
pub fn threads_from_env() -> usize {
    for var in ["RAYON_NUM_THREADS", "TEA_THREADS"] {
        if let Ok(v) = std::env::var(var) {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// The experiment engine: a fault-tolerant worker-pool executor for
/// cell matrices.
#[derive(Clone, Debug)]
pub struct Engine {
    threads: usize,
    progress: bool,
    max_retries: u32,
    backoff: Duration,
    backoff_cap: Duration,
    cell_budget: Option<u64>,
    fail_fast: bool,
    trace_cache: bool,
    trace_cache_budget: Option<u64>,
    chaos: Option<Arc<ChaosInjector>>,
    progress_sinks: ProgressSinks,
    heartbeat: Duration,
}

/// The engine's installed progress sinks ([`Engine::progress_sink`]).
/// Newtype so `Engine` keeps deriving `Debug`.
#[derive(Clone, Default)]
struct ProgressSinks(Vec<Arc<dyn ProgressSink>>);

impl std::fmt::Debug for ProgressSinks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ProgressSinks({})", self.0.len())
    }
}

/// A unit of work handed to the pool: a spec to run, or an outcome
/// restored from the resume journal.
enum CellWork {
    Run(Box<CellSpec>),
    Restored(Box<CellOutcome>),
}

impl CellWork {
    fn run(spec: CellSpec) -> Self {
        CellWork::Run(Box::new(spec))
    }
}

impl Engine {
    fn with_threads(threads: usize) -> Self {
        Engine {
            threads,
            progress: true,
            max_retries: 0,
            backoff: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            cell_budget: None,
            fail_fast: false,
            trace_cache: true,
            trace_cache_budget: None,
            chaos: None,
            progress_sinks: ProgressSinks::default(),
            heartbeat: Duration::from_millis(250),
        }
    }

    /// An engine sized by [`threads_from_env`], with progress reporting.
    #[must_use]
    pub fn from_env() -> Self {
        Engine::with_threads(threads_from_env())
    }

    /// A single-threaded engine (cells run in matrix order).
    #[must_use]
    pub fn serial() -> Self {
        Engine::with_threads(1)
    }

    /// An engine with an explicit worker count.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Engine::with_threads(threads.max(1))
    }

    /// Disables the per-cell progress line on stderr.
    #[must_use]
    pub fn quiet(mut self) -> Self {
        self.progress = false;
        self
    }

    /// Retries transient cell failures (panics, injected faults) up to
    /// `n` additional times. Deterministic failures — rejected configs,
    /// architectural program faults, exceeded cycle budgets — are never
    /// retried.
    #[must_use]
    pub fn max_retries(mut self, n: u32) -> Self {
        self.max_retries = n;
        self
    }

    /// Sets the deterministic retry backoff: attempt `k` waits
    /// `min(base << (k-1), cap)`. The default is 50 ms doubling up to
    /// 2 s; tests pass `Duration::ZERO` to retry immediately.
    #[must_use]
    pub fn backoff(mut self, base: Duration, cap: Duration) -> Self {
        self.backoff = base;
        self.backoff_cap = cap;
        self
    }

    /// Caps every cell at `budget` simulated cycles (a deterministic
    /// watchdog: the simulator's own clock, not wall time). Cells still
    /// running at the budget become [`CellStatus::TimedOut`]. A cell's
    /// own [`CellSpec::budget`] takes precedence.
    #[must_use]
    pub fn cell_budget(mut self, budget: u64) -> Self {
        self.cell_budget = Some(budget);
        self
    }

    /// Stops claiming new cells after the first failure; unclaimed
    /// cells finish as [`CellStatus::Skipped`]. Cells already in flight
    /// run to completion.
    #[must_use]
    pub fn fail_fast(mut self) -> Self {
        self.fail_fast = true;
        self
    }

    /// Toggles the per-run captured-trace cache (default **on**): each
    /// workload's functional execution is interpreted once and every
    /// other cell replays the shared [`tea_isa::CapturedTrace`]. Replay
    /// is bit-identical to live interpretation; disabling the cache
    /// (`tea-cli --no-trace-cache`) exists as an escape hatch and for
    /// the identity tests themselves.
    #[must_use]
    pub fn trace_cache(mut self, enabled: bool) -> Self {
        self.trace_cache = enabled;
        self
    }

    /// Caps the per-run trace cache's accounted resident set at
    /// `bytes` (`tea-cli --trace-cache-budget`). Unreferenced captures
    /// are evicted deterministically — ascending fingerprint order —
    /// after each build; an evicted workload re-captures on its next
    /// checkout. Applies only to the engine's own per-run cache, never
    /// to a caller-owned [`Engine::run_with_cache`] cache (configure
    /// that one directly via [`TraceCache::set_budget`]).
    #[must_use]
    pub fn trace_cache_budget(mut self, bytes: u64) -> Self {
        self.trace_cache_budget = Some(bytes);
        self
    }

    /// Arms deterministic chaos injection from `seed` (`tea-cli suite
    /// --chaos-seed`): trace corruption and forced capture failures in
    /// the per-run cache, observer panics inside cells, and torn
    /// journal records. Every decision is a pure function of the seed,
    /// so a chaos run is exactly reproducible. See [`ChaosInjector`].
    #[must_use]
    pub fn chaos_seed(self, seed: u64) -> Self {
        self.chaos(Arc::new(ChaosInjector::new(seed)))
    }

    /// [`Engine::chaos_seed`] with the injector built by the caller,
    /// so one injector can be shared with other seams (e.g.
    /// [`RunResult::write_artifact_with`]).
    #[must_use]
    pub fn chaos(mut self, injector: Arc<ChaosInjector>) -> Self {
        self.chaos = Some(injector);
        self
    }

    /// Installs a [`ProgressSink`] receiving the run's live lifecycle
    /// events (queued/start/retry/replay-fallback/finish), periodic
    /// heartbeats, and the final per-cell status roll-up. Multiple
    /// sinks may be installed; each sees every event. See
    /// [`ProgressStream`] (`tea-cli --progress-stream`) and
    /// [`ProgressRecorder`] (the HTML report's data source).
    #[must_use]
    pub fn progress_sink(mut self, sink: Arc<dyn ProgressSink>) -> Self {
        self.progress_sinks.0.push(sink);
        self
    }

    /// Sets the heartbeat cadence for installed progress sinks
    /// (default 250 ms). Heartbeats only flow while at least one sink
    /// is installed.
    #[must_use]
    pub fn heartbeat_interval(mut self, interval: Duration) -> Self {
        self.heartbeat = interval.max(Duration::from_millis(1));
        self
    }

    /// The worker count this engine will use.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every cell and returns the outcomes **in cell order** —
    /// results do not depend on which worker ran which cell, so a
    /// parallel run is bit-identical to [`Engine::serial`] (over
    /// [`RunResult::deterministic_json`]).
    ///
    /// A failing cell never tears down the run: its panic or error is
    /// captured as a [`CellStatus::Failed`] / [`CellStatus::TimedOut`]
    /// outcome and every other cell completes normally.
    #[must_use]
    pub fn run(&self, name: &str, cells: Vec<CellSpec>) -> RunResult {
        let work = cells.into_iter().map(CellWork::run).collect();
        self.run_inner(name, work, None)
    }

    /// [`Engine::run`] drawing captured traces and shared golden
    /// references from a caller-owned [`TraceCache`] instead of a
    /// fresh per-run one.
    ///
    /// One functional execution then serves *every* matrix the cache
    /// outlives — sweeps split across several [`Engine::run`] calls
    /// (interval scans, config ladders, repeated measurements) stop
    /// re-interpreting their workloads on each call. The cache is
    /// warmed as a side effect: the first run captures, later runs
    /// replay. Results are bit-identical to [`Engine::run`] with the
    /// cache enabled (and to cache-off runs; see the replay-identity
    /// tests).
    #[must_use]
    pub fn run_with_cache(
        &self,
        name: &str,
        cells: Vec<CellSpec>,
        cache: &TraceCache,
    ) -> RunResult {
        let work = cells.into_iter().map(CellWork::run).collect();
        self.run_inner_with(name, work, None, Some(cache))
    }

    /// Like [`Engine::run`], journaling every completed cell to
    /// `target/experiments/<name>.journal.jsonl` (truncating any
    /// previous journal) so an interrupted run can be picked up by
    /// [`Engine::resume`].
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the journal file cannot be created.
    pub fn run_journaled(&self, name: &str, cells: Vec<CellSpec>) -> std::io::Result<RunResult> {
        let journal = Journal::create(name)?;
        let work = cells.into_iter().map(CellWork::run).collect();
        Ok(self.run_inner(name, work, Some(&journal)))
    }

    /// Resumes an interrupted [`Engine::run_journaled`] run: cells whose
    /// journal entry is `ok` and whose spec fingerprint still matches
    /// are restored verbatim; missing, failed, timed-out and skipped
    /// cells are re-run (and journaled). Because the simulator is
    /// deterministic, the merged result is bit-identical (over
    /// [`RunResult::deterministic_json`]) to an uninterrupted run.
    ///
    /// A missing journal is not an error — every cell simply re-runs.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the journal file cannot be opened for
    /// appending.
    pub fn resume(&self, name: &str, cells: Vec<CellSpec>) -> std::io::Result<RunResult> {
        let entries = Journal::load(name);
        let journal = Journal::append_to(name)?;
        let work = cells
            .into_iter()
            .enumerate()
            .map(|(i, spec)| {
                let fingerprint = spec_fingerprint(&spec);
                match entries.get(&i) {
                    Some(e) if e.status == CellStatus::Ok && e.fingerprint == fingerprint => {
                        CellWork::Restored(Box::new(CellOutcome {
                            index: i,
                            spec,
                            status: CellStatus::Ok,
                            attempts: e.attempts,
                            wall: Duration::ZERO,
                            data: CellData::Restored(e.cell.clone()),
                        }))
                    }
                    _ => CellWork::run(spec),
                }
            })
            .collect();
        Ok(self.run_inner(name, work, Some(&journal)))
    }

    /// The level engine progress events are emitted at: `Info` for a
    /// reporting engine, `Debug` (hidden at default stderr verbosity)
    /// for a [`Engine::quiet`] one. Trace sinks capture both.
    fn event_level(&self) -> Level {
        if self.progress {
            Level::Info
        } else {
            Level::Debug
        }
    }

    fn run_inner(&self, name: &str, work: Vec<CellWork>, journal: Option<&Journal>) -> RunResult {
        self.run_inner_with(name, work, journal, None)
    }

    fn run_inner_with(
        &self,
        name: &str,
        work: Vec<CellWork>,
        journal: Option<&Journal>,
        shared_cache: Option<&TraceCache>,
    ) -> RunResult {
        let t0 = Instant::now();
        let total = work.len();
        let workers = self.threads.min(total.max(1));
        let mut run_span = tea_obs::span(
            Level::Debug,
            ENGINE_TARGET,
            "run",
            &[
                ("name", Value::str(name)),
                ("cells", Value::from(total)),
                ("workers", Value::from(workers)),
            ],
        );
        // The queue-depth gauge is add-based (never `set`) so
        // concurrent runs in one process each retire exactly the
        // depth they added and the gauge deterministically reads 0 at
        // every run boundary — which keeps serial and parallel
        // metric snapshots equal.
        let queue_depth = metrics().gauge("engine.queue_depth");
        queue_depth.add(i64::try_from(total).unwrap_or(i64::MAX));
        self.emit_progress(&ProgressEvent::RunStart {
            ts_ns: tea_obs::now_ns(),
            name: name.to_string(),
            total,
            workers,
        });
        for (i, w) in work.iter().enumerate() {
            if let CellWork::Run(spec) = w {
                tea_obs::debug(ENGINE_TARGET, "cell queued", &cell_fields(i, spec));
                self.emit_progress(&ProgressEvent::CellQueued {
                    ts_ns: tea_obs::now_ns(),
                    index: i,
                    workload: spec.workload.to_string(),
                    config: spec.config_name.to_string(),
                });
            }
        }
        // One trace cache serves the whole run: the first cell of each
        // workload interprets it, every later cell replays the capture.
        // A caller-owned cache (Engine::run_with_cache) takes priority
        // and survives the run, sharing captures across runs.
        let own_cache = (shared_cache.is_none() && self.trace_cache).then(|| {
            let mut cache = TraceCache::new();
            if let Some(bytes) = self.trace_cache_budget {
                cache.set_budget(bytes);
            }
            if let Some(chaos) = &self.chaos {
                cache.set_chaos(Arc::clone(chaos));
            }
            cache
        });
        let cache = shared_cache.or(own_cache.as_ref());
        // Cells are handed to exactly one worker each (shared-nothing);
        // the slot Mutexes only guard the ownership transfer.
        let slots: Vec<Mutex<Option<CellWork>>> =
            work.into_iter().map(|c| Mutex::new(Some(c))).collect();
        let results: Vec<Mutex<Option<CellOutcome>>> =
            (0..total).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);
        // Heartbeat inputs: cells currently executing, and finished
        // fresh-cell wall times feeding the ETA estimate.
        let running = AtomicUsize::new(0);
        let finished_walls: Mutex<Vec<f64>> = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            if !self.progress_sinks.0.is_empty() && total > 0 {
                let (done, running, walls) = (&done, &running, &finished_walls);
                s.spawn(move || self.heartbeat_loop(total, workers, done, running, walls));
            }
            for worker in 0..workers {
                let (slots, results) = (&slots, &results);
                let (next, done, abort) = (&next, &done, &abort);
                let (running, finished_walls, queue_depth) =
                    (&running, &finished_walls, &queue_depth);
                s.spawn(move || {
                    tea_obs::set_thread_name(&format!("engine-worker-{worker}"));
                    let _sinks = progress::install_current(&self.progress_sinks.0);
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= total {
                            break;
                        }
                        queue_depth.add(-1);
                        // Slot locks only transfer ownership of complete
                        // values; recover from poisoning (a panicking
                        // sibling worker) rather than cascade the wedge.
                        let work = trace_cache::lock_recover(&slots[i])
                            .take()
                            .expect("each cell is claimed exactly once");
                        let outcome = match work {
                            CellWork::Restored(outcome) => *outcome,
                            CellWork::Run(spec) => {
                                if self.fail_fast && abort.load(Ordering::Relaxed) {
                                    CellOutcome::skipped(i, *spec)
                                } else {
                                    self.emit_progress(&ProgressEvent::CellStart {
                                        ts_ns: tea_obs::now_ns(),
                                        index: i,
                                        workload: spec.workload.to_string(),
                                        config: spec.config_name.to_string(),
                                        worker,
                                    });
                                    running.fetch_add(1, Ordering::Relaxed);
                                    let outcome = self.run_cell_traced(i, *spec, cache);
                                    running.fetch_sub(1, Ordering::Relaxed);
                                    outcome
                                }
                            }
                        };
                        if self.fail_fast && outcome.status != CellStatus::Ok {
                            abort.store(true, Ordering::Relaxed);
                        }
                        if let Some(j) = journal {
                            if !matches!(outcome.data, CellData::Restored(_)) {
                                let entry = JournalEntry::of(&outcome);
                                if self.chaos.as_ref().is_some_and(|c| c.tear_journal(i)) {
                                    tea_obs::warn(
                                        ENGINE_TARGET,
                                        "chaos: tearing the cell's journal record mid-line",
                                        &[("index", Value::from(i))],
                                    );
                                    j.record_torn(&entry);
                                } else {
                                    j.record(&entry);
                                }
                            }
                        }
                        let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                        self.progress_line(name, finished, total, &outcome);
                        if matches!(outcome.data, CellData::Fresh(_)) {
                            trace_cache::lock_recover(finished_walls)
                                .push(outcome.wall.as_secs_f64());
                        }
                        self.emit_progress(&ProgressEvent::CellFinish {
                            ts_ns: tea_obs::now_ns(),
                            index: i,
                            status: outcome.status.name().to_string(),
                            attempts: outcome.attempts,
                            wall_ms: outcome.wall.as_secs_f64() * 1e3,
                            done: finished,
                            total,
                        });
                        *trace_cache::lock_recover(&results[i]) = Some(outcome);
                    }
                });
            }
        });
        let cells: Vec<CellOutcome> = results
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .expect("every cell produces an outcome")
            })
            .collect();
        record_run_metrics(&cells);
        let wall = t0.elapsed();
        run_span.record("wall_ms", wall.as_millis() as u64);
        drop(run_span);
        self.emit_progress(&ProgressEvent::RunFinish {
            ts_ns: tea_obs::now_ns(),
            name: name.to_string(),
            wall_ms: wall.as_secs_f64() * 1e3,
            statuses: cells.iter().map(|c| c.status.name().to_string()).collect(),
        });
        RunResult {
            name: name.to_string(),
            threads: workers,
            wall,
            cells,
        }
    }

    /// Fans one event out to every installed progress sink.
    fn emit_progress(&self, event: &ProgressEvent) {
        for sink in &self.progress_sinks.0 {
            sink.emit(event);
        }
    }

    /// Emits a heartbeat every [`Engine::heartbeat_interval`] until
    /// every cell is done. Sleeps in short slices so run completion is
    /// never held up by a pending interval.
    fn heartbeat_loop(
        &self,
        total: usize,
        workers: usize,
        done: &AtomicUsize,
        running: &AtomicUsize,
        finished_walls: &Mutex<Vec<f64>>,
    ) {
        let slice = Duration::from_millis(10).min(self.heartbeat);
        let mut elapsed = Duration::ZERO;
        loop {
            if done.load(Ordering::Relaxed) >= total {
                return;
            }
            std::thread::sleep(slice);
            elapsed += slice;
            if elapsed < self.heartbeat {
                continue;
            }
            elapsed = Duration::ZERO;
            let finished = done.load(Ordering::Relaxed);
            if finished >= total {
                return;
            }
            let in_flight = running.load(Ordering::Relaxed);
            let walls = trace_cache::lock_recover(finished_walls);
            let eta_s = (!walls.is_empty()).then(|| {
                let mean = walls.iter().sum::<f64>() / walls.len() as f64;
                let remaining = (total - finished) as f64;
                mean * remaining / workers.max(1) as f64
            });
            drop(walls);
            self.emit_progress(&ProgressEvent::Heartbeat {
                ts_ns: tea_obs::now_ns(),
                done: finished,
                total,
                running: in_flight,
                workers,
                utilization: in_flight as f64 / workers.max(1) as f64,
                eta_s,
            });
        }
    }

    /// Wraps one fresh cell in its tracing span (the cell's lane entry
    /// in a Chrome trace, on the executing worker's thread) and start
    /// event, then runs it.
    fn run_cell_traced(
        &self,
        index: usize,
        spec: CellSpec,
        cache: Option<&TraceCache>,
    ) -> CellOutcome {
        let fields = cell_fields(index, &spec);
        let mut span = tea_obs::span(Level::Debug, ENGINE_TARGET, "cell", &fields);
        tea_obs::event(self.event_level(), ENGINE_TARGET, "cell start", &fields);
        let outcome = self.execute_cell(index, spec, cache);
        span.record("status", outcome.status.name());
        span.record("attempts", u64::from(outcome.attempts));
        if let CellData::Failed(e) = &outcome.data {
            span.record("cause", e.kind());
        }
        outcome
    }

    /// Emits the per-cell finish event carrying the old stderr progress
    /// line as its message plus structured outcome fields.
    fn progress_line(&self, name: &str, finished: usize, total: usize, outcome: &CellOutcome) {
        let message = match &outcome.data {
            CellData::Fresh(r) => format!(
                "[{name}] {finished:>3}/{total} {:<14} {:<10} {:>8} cycles  \
                 {:>6.2}s  {:>7.2} Msim-inst/s",
                r.spec.workload,
                r.spec.config_name,
                r.stats.cycles,
                r.wall.as_secs_f64(),
                r.sim_mips(),
            ),
            CellData::Restored(_) => format!(
                "[{name}] {finished:>3}/{total} {:<14} {:<10} restored from journal",
                outcome.spec.workload, outcome.spec.config_name,
            ),
            CellData::Failed(e) => format!(
                "[{name}] {finished:>3}/{total} {:<14} {:<10} {}: {e}",
                outcome.spec.workload,
                outcome.spec.config_name,
                outcome.status.name(),
            ),
        };
        tea_obs::event(
            self.event_level(),
            ENGINE_TARGET,
            &message,
            &[
                ("index", Value::from(outcome.index)),
                ("status", Value::str(outcome.status.name())),
                ("attempts", Value::from(u64::from(outcome.attempts))),
            ],
        );
    }

    /// Runs one cell under `catch_unwind` with retry and backoff.
    fn execute_cell(
        &self,
        index: usize,
        spec: CellSpec,
        cache: Option<&TraceCache>,
    ) -> CellOutcome {
        let t0 = Instant::now();
        let budget = spec.budget.or(self.cell_budget);
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match run_cell_guarded(index, &spec, attempt, budget, cache, self.chaos.as_deref()) {
                Ok(result) => {
                    return CellOutcome {
                        index,
                        spec,
                        status: CellStatus::Ok,
                        attempts: attempt,
                        wall: t0.elapsed(),
                        data: CellData::Fresh(Box::new(result)),
                    }
                }
                Err(e) => {
                    if e.is_transient() && attempt <= self.max_retries {
                        let delay = backoff_delay(self.backoff, self.backoff_cap, attempt);
                        tea_obs::warn(
                            ENGINE_TARGET,
                            "cell retrying",
                            &[
                                ("index", Value::from(index)),
                                ("workload", Value::str(&*spec.workload)),
                                ("attempt", Value::from(u64::from(attempt))),
                                ("cause", Value::str(e.kind())),
                                ("message", Value::str(e.to_string())),
                                ("backoff_ms", Value::from(delay.as_millis() as u64)),
                            ],
                        );
                        metrics().counter("engine.retries").inc();
                        self.emit_progress(&ProgressEvent::CellRetry {
                            ts_ns: tea_obs::now_ns(),
                            index,
                            attempt,
                            cause: e.kind().to_string(),
                        });
                        if delay > Duration::ZERO {
                            std::thread::sleep(delay);
                        }
                        continue;
                    }
                    let status = match e {
                        ExpError::Timeout { .. } => CellStatus::TimedOut,
                        _ => CellStatus::Failed,
                    };
                    return CellOutcome {
                        index,
                        spec,
                        status,
                        attempts: attempt,
                        wall: t0.elapsed(),
                        data: CellData::Failed(e),
                    };
                }
            }
        }
    }
}

/// Tracing target of every engine-emitted record.
const ENGINE_TARGET: &str = "tea_exp::engine";

/// Shorthand for the process-global metrics registry.
fn metrics() -> &'static tea_obs::metrics::Registry {
    tea_obs::metrics::global()
}

/// The identifying fields stamped on a cell's queued/start/span records.
fn cell_fields(index: usize, spec: &CellSpec) -> [(&'static str, Value); 3] {
    [
        ("index", Value::from(index)),
        ("workload", Value::str(&*spec.workload)),
        ("config", Value::str(&*spec.config_name)),
    ]
}

/// Publishes a finished run's per-status cell counts and attempt
/// histogram into the metrics registry. Counter adds commute, so the
/// totals are independent of worker count and scheduling.
fn record_run_metrics(cells: &[CellOutcome]) {
    let m = metrics();
    let attempts = m.histogram("engine.cell_attempts", &[1, 2, 3, 4, 8]);
    for outcome in cells {
        let status = match outcome.status {
            CellStatus::Ok => {
                if matches!(outcome.data, CellData::Restored(_)) {
                    "restored"
                } else {
                    "ok"
                }
            }
            CellStatus::Failed => "failed",
            CellStatus::TimedOut => "timed_out",
            CellStatus::Skipped => "skipped",
        };
        m.counter(&format!("engine.cells_{status}")).inc();
        if outcome.attempts > 0 {
            attempts.observe(u64::from(outcome.attempts));
        }
        if let CellData::Failed(ExpError::Panic { .. }) = &outcome.data {
            m.counter("engine.panics").inc();
        }
    }
}

/// The deterministic capped exponential backoff before retry `attempt+1`:
/// `min(base << (attempt-1), cap)`.
fn backoff_delay(base: Duration, cap: Duration, attempt: u32) -> Duration {
    let shift = (attempt - 1).min(16);
    base.saturating_mul(1u32 << shift).min(cap)
}

/// Runs one cell attempt with panics captured as [`ExpError::Panic`].
fn run_cell_guarded(
    index: usize,
    spec: &CellSpec,
    attempt: u32,
    budget: Option<u64>,
    cache: Option<&TraceCache>,
    chaos: Option<&ChaosInjector>,
) -> Result<CellResult, ExpError> {
    quiet_panics::install();
    let spec = spec.clone();
    quiet_panics::with_quiet(|| {
        match catch_unwind(AssertUnwindSafe(|| {
            run_cell_attempt(index, spec, attempt, budget, cache, chaos)
        })) {
            Ok(inner) => inner,
            Err(payload) => Err(ExpError::Panic {
                // `&*payload`, not `&payload`: coercing `&Box<dyn Any>`
                // would downcast against the Box itself and never match.
                message: panic_message(&*payload),
            }),
        }
    })
}

/// Downcasts a `catch_unwind` payload to its message where possible.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Suppression of the default panic hook's stderr backtrace while a
/// cell body runs under `catch_unwind`: a cell failure is an expected,
/// captured outcome, not a crash worth a traceback per retry.
mod quiet_panics {
    use std::cell::Cell;
    use std::sync::Once;

    thread_local! {
        static QUIET: Cell<bool> = const { Cell::new(false) };
    }
    static INSTALL: Once = Once::new();

    /// Installs (once, process-wide) a panic hook that stays silent on
    /// threads currently inside [`with_quiet`] and delegates to the
    /// previous hook everywhere else.
    pub fn install() {
        INSTALL.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                if !QUIET.with(Cell::get) {
                    prev(info);
                }
            }));
        });
    }

    /// Runs `f` with this thread's panics silenced.
    pub fn with_quiet<T>(f: impl FnOnce() -> T) -> T {
        QUIET.with(|q| q.set(true));
        let r = f();
        QUIET.with(|q| q.set(false));
        r
    }
}

/// Runs one cell: builds its observers, performs the single simulation
/// pass, and packages the measurements.
///
/// This is the engine's single-cell entry point for harnesses that run
/// one spec without a pool: no `catch_unwind`, no retry; the cell's own
/// [`CellSpec::budget`] applies.
///
/// # Errors
///
/// Returns [`ExpError::Config`] for a rejected configuration,
/// [`ExpError::Sim`] for an architectural program fault,
/// [`ExpError::Timeout`] for an exceeded cycle budget, and
/// [`ExpError::Injected`] for an injected fault.
pub fn run_cell(index: usize, spec: CellSpec) -> Result<CellResult, ExpError> {
    let budget = spec.budget;
    run_cell_attempt(index, spec, 1, budget, None, None)
}

/// One attempt of one cell. `attempt` is 1-based and keys injected
/// faults; `budget` caps the simulation in simulated cycles; `cache`
/// supplies a shared captured trace when the engine's trace cache is
/// on (an uncacheable program falls back to live interpretation);
/// `chaos` injects deterministic faults at the attempt's seams.
///
/// Degradation, not failure: when a replayed trace fails its
/// integrity checks mid-run ([`SimError::Trace`]), the attempt
/// quarantines the trace — later cells of the program go straight to
/// live interpretation — and transparently re-runs this cell live
/// from cycle 0 with the same spec, seed, and attempt count, so the
/// cell's results are bit-identical to a cell that never replayed.
/// Integrity failures are permanent (re-decoding the same bytes
/// cannot succeed), so the fallback happens *within* the attempt
/// instead of burning the engine's retries.
fn run_cell_attempt(
    index: usize,
    spec: CellSpec,
    attempt: u32,
    budget: Option<u64>,
    cache: Option<&TraceCache>,
    chaos: Option<&ChaosInjector>,
) -> Result<CellResult, ExpError> {
    let t0 = Instant::now();
    match spec.fault {
        Some(Fault::PanicUntilAttempt(n)) if attempt < n => {
            panic!("injected panic on attempt {attempt} (cell {index})")
        }
        Some(Fault::ErrorUntilAttempt(n)) if attempt < n => {
            return Err(ExpError::Injected { attempt });
        }
        _ => {}
    }
    // Hash the program once per cell; both cache lookups key on it.
    let program_key = cache.map(|_| trace_cache::program_fingerprint(&spec.program));
    // Transient observer faults fire only on the first attempt (the
    // retry loop recovers them); persistent ones fire on every attempt
    // and surface as a failed cell.
    let observer_fault = chaos
        .and_then(|c| c.observer_fault(index))
        .filter(|f| f.persistent || attempt == 1);
    let trace = cache
        .zip(program_key)
        .and_then(|(c, key)| c.checkout_keyed(key, &spec.program));
    let replaying = trace.is_some();
    let first = run_cell_pass(
        index,
        &spec,
        budget,
        cache,
        program_key,
        trace,
        observer_fault,
        t0,
    );
    match first {
        Err(ExpError::Sim(SimError::Trace(e))) if replaying => {
            if let Some((c, key)) = cache.zip(program_key) {
                c.quarantine_keyed(key);
            }
            metrics().counter("replay.fallback").inc();
            tea_obs::warn(
                ENGINE_TARGET,
                "replay trace failed integrity checks mid-run; \
                 falling back to live interpretation",
                &[
                    ("index", Value::from(index)),
                    ("workload", Value::str(&*spec.workload)),
                    ("error", Value::from(e.to_string())),
                ],
            );
            progress::emit_current(&ProgressEvent::ReplayFallback {
                ts_ns: tea_obs::now_ns(),
                index,
                workload: spec.workload.to_string(),
            });
            // The failed pass dropped its golden ticket (if it held
            // one), so this pass can re-claim and publish.
            run_cell_pass(
                index,
                &spec,
                budget,
                cache,
                program_key,
                None,
                observer_fault,
                t0,
            )
        }
        done => done,
    }
}

/// One simulation pass of one cell: builds its observers, runs the
/// core — replaying `trace` when given, interpreting live otherwise —
/// and packages the measurements. `t0` is the enclosing attempt's
/// start, so a fallback pass's wall time covers the wasted replay too.
#[allow(clippy::too_many_arguments)]
fn run_cell_pass(
    index: usize,
    spec: &CellSpec,
    budget: Option<u64>,
    cache: Option<&TraceCache>,
    program_key: Option<u64>,
    trace: Option<Arc<CapturedTrace>>,
    observer_fault: Option<ObserverFault>,
    t0: Instant,
) -> Result<CellResult, ExpError> {
    let timer = || SampleTimer::with_jitter(spec.interval, spec.interval / 8, spec.seed);
    // The golden reference is seed- and interval-independent, so cells
    // of one (program, config) pair share one finished reference: the
    // claim winner computes and publishes it, later cells skip the
    // observer entirely, and claim-race losers compute locally.
    let mut golden_shared = None;
    let mut golden_ticket = None;
    let mut golden = if spec.golden {
        match cache
            .zip(program_key)
            .map(|(c, key)| c.golden_checkout_keyed(key, &spec.config))
        {
            Some(GoldenCheckout::Shared(g)) => {
                golden_shared = Some(g);
                None
            }
            Some(GoldenCheckout::Compute(ticket)) => {
                golden_ticket = ticket;
                Some(GoldenReference::new())
            }
            None => Some(GoldenReference::new()),
        }
    } else {
        None
    };
    // One statically dispatched set (ISSUE 10): every known profiler is
    // an `AnyObserver` variant, so the run loop delivers notifications
    // through enum matches instead of a `&mut dyn Observer` slice. Each
    // push index is remembered so the observers can be taken back out
    // after the run.
    let mut set = ObserverSet::new();
    let golden_at = golden.take().map(|g| set.push(AnyObserver::Golden(g)));
    let tip_at = if spec.tip {
        Some(set.push(AnyObserver::Tip(TipProfiler::new(timer()))))
    } else {
        None
    };
    let scheme_at: Vec<(Scheme, usize)> = spec
        .schemes
        .iter()
        .map(|&s| (s, set.push(AnyObserver::for_scheme(s, timer()))))
        .collect();
    // Last, so the injected panic never masks real observer work in
    // the same cycle. Chaos is the one observer outside the known set;
    // it rides the `Dyn` escape hatch at the old virtual-call cost.
    if let Some(fault) = observer_fault {
        set.push(AnyObserver::Dyn(Box::new(ChaosObserver::new(fault))));
    }
    let stats = {
        let mut core = match trace {
            Some(trace) => Core::try_with_trace(&spec.program, trace, spec.config.clone()),
            None => Core::try_new(&spec.program, spec.config.clone()),
        }
        .map_err(ExpError::Config)?;
        match budget {
            Some(max) => {
                let stats = core
                    .try_run_for_with(max, &mut set)
                    .map_err(ExpError::Sim)?;
                if !core.is_halted() {
                    return Err(ExpError::Timeout { budget: max });
                }
                stats
            }
            None => core.try_run_with(&mut set).map_err(ExpError::Sim)?,
        }
    };
    let wall = t0.elapsed();
    // Disassemble the set back into its typed members.
    let mut items: Vec<Option<AnyObserver>> = set.into_items().into_iter().map(Some).collect();
    let golden = golden_at.map(|at| match items[at].take() {
        Some(AnyObserver::Golden(g)) => g,
        _ => unreachable!("golden observer keeps its slot"),
    });
    let tip = tip_at.map(|at| match items[at].take() {
        Some(AnyObserver::Tip(t)) => t,
        _ => unreachable!("tip observer keeps its slot"),
    });
    let scheme_obs: Vec<(Scheme, AnyObserver)> = scheme_at
        .into_iter()
        .map(|(s, at)| (s, items[at].take().expect("scheme observer keeps its slot")))
        .collect();
    // The run succeeded: publish a claimed reference for later cells of
    // the pair, or adopt the shared one so the cell's artifact (and the
    // profiler.golden.* counters) are identical to a computed run's.
    let golden = match golden.map(Arc::new) {
        Some(g) => {
            if let Some(ticket) = golden_ticket {
                ticket.publish(Arc::clone(&g));
            }
            Some(g)
        }
        None => golden_shared,
    };
    record_profiler_metrics(golden.as_deref(), tip.as_ref(), &scheme_obs);
    let mut pics = HashMap::new();
    let mut samples = HashMap::new();
    for (scheme, obs) in scheme_obs {
        samples.insert(
            scheme,
            obs.samples().expect("scheme observers count samples"),
        );
        pics.insert(
            scheme,
            obs.into_pics().expect("scheme observers produce PICS"),
        );
    }
    Ok(CellResult {
        index,
        spec: spec.clone(),
        stats,
        golden,
        tip: tip.map(|t| t.profile().clone()),
        pics,
        samples,
        wall,
    })
}

/// Publishes one finished cell attempt's profiler measurements:
/// samples taken, samples dropped (still pending — never attributed to
/// a retired instruction — when the run finished) per scheme, and the
/// golden reference's attribution totals. One batch of relaxed atomic
/// adds per cell, off the simulation hot path.
fn record_profiler_metrics(
    golden: Option<&GoldenReference>,
    tip: Option<&TipProfiler>,
    scheme_obs: &[(Scheme, AnyObserver)],
) {
    let m = metrics();
    for (scheme, obs) in scheme_obs {
        let name = scheme.name();
        m.counter(&format!("profiler.{name}.samples_taken"))
            .add(obs.samples().unwrap_or(0));
        m.counter(&format!("profiler.{name}.samples_dropped"))
            .add(obs.pending_samples().unwrap_or(0) as u64);
    }
    if let Some(t) = tip {
        m.counter("profiler.TIP.samples_taken").add(t.samples());
        m.counter("profiler.TIP.samples_dropped")
            .add(t.pending_samples() as u64);
    }
    if let Some(g) = golden {
        m.counter("profiler.golden.attributed_cycles")
            .add(g.total_cycles());
        m.counter("profiler.golden.pending_map_size")
            .add(g.pending_cycles() as u64);
        m.counter("profiler.golden.unattributed_compute_cycles")
            .add(g.unattributed_compute_cycles());
    }
}

/// What a finished cell carries.
#[derive(Clone, Debug)]
pub enum CellData {
    /// Measurements from a cell simulated in this process (boxed: a
    /// result dwarfs the error variants).
    Fresh(Box<CellResult>),
    /// The rendered artifact object of a cell restored from a resume
    /// journal. The in-memory measurement structures (PICS, golden
    /// reference) are not re-materialized; the stored JSON is spliced
    /// into the merged artifact verbatim.
    Restored(Json),
    /// The structured error of a failed, timed-out or skipped cell.
    Failed(ExpError),
}

/// The terminal outcome of one cell: its status, how many attempts it
/// took, and either its measurements or its structured error.
#[derive(Clone, Debug)]
pub struct CellOutcome {
    /// Position of the cell in the run's matrix.
    pub index: usize,
    /// The spec the cell ran under.
    pub spec: CellSpec,
    /// Terminal status.
    pub status: CellStatus,
    /// Attempts consumed (1 for a first-try success; 0 for a skipped
    /// cell that never ran).
    pub attempts: u32,
    /// Wall-clock time spent on the cell across all attempts.
    pub wall: Duration,
    /// The measurements or the error.
    pub data: CellData,
}

impl CellOutcome {
    fn skipped(index: usize, spec: CellSpec) -> Self {
        CellOutcome {
            index,
            spec,
            status: CellStatus::Skipped,
            attempts: 0,
            wall: Duration::ZERO,
            data: CellData::Failed(ExpError::Skipped),
        }
    }

    /// The cell's measurements, when it completed in this process.
    /// `None` for failed cells and for cells restored from a journal.
    #[must_use]
    pub fn result(&self) -> Option<&CellResult> {
        match &self.data {
            CellData::Fresh(r) => Some(r),
            _ => None,
        }
    }

    /// The cell's structured error, when it failed.
    #[must_use]
    pub fn error(&self) -> Option<&ExpError> {
        match &self.data {
            CellData::Failed(e) => Some(e),
            _ => None,
        }
    }

    /// Whether the cell completed.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.status == CellStatus::Ok
    }

    /// Unwraps into the cell's measurements.
    ///
    /// # Errors
    ///
    /// The cell's [`ExpError`] if it failed, or [`ExpError::Journal`]
    /// for a journal-restored cell (which carries no in-memory
    /// measurements).
    pub fn into_result(self) -> Result<CellResult, ExpError> {
        match self.data {
            CellData::Fresh(r) => Ok(*r),
            CellData::Failed(e) => Err(e),
            CellData::Restored(_) => Err(ExpError::Journal {
                reason: "restored cells carry no in-memory measurements".to_string(),
            }),
        }
    }

    /// Instructions the cell retired (0 when it failed; read back from
    /// the stored JSON for restored cells).
    #[must_use]
    pub fn instructions(&self) -> u64 {
        match &self.data {
            CellData::Fresh(r) => r.stats.retired,
            CellData::Restored(doc) => doc.get("instructions").and_then(Json::as_u64).unwrap_or(0),
            CellData::Failed(_) => 0,
        }
    }

    /// The cell as its `tea-experiment/v2` artifact object.
    #[must_use]
    pub fn to_json(&self) -> Json {
        if let CellData::Restored(doc) = &self.data {
            return doc.clone();
        }
        let mut fields = vec![
            ("workload", Json::Str(self.spec.workload.clone())),
            ("config", Json::Str(self.spec.config_name.clone())),
            ("interval", Json::UInt(self.spec.interval)),
            ("seed", Json::UInt(self.spec.seed)),
            ("status", Json::Str(self.status.name().to_string())),
            ("attempts", Json::UInt(u64::from(self.attempts))),
        ];
        match &self.data {
            CellData::Fresh(r) => fields.extend(r.measurement_fields()),
            CellData::Failed(e) => fields.push((
                "error",
                Json::obj(vec![
                    ("kind", Json::Str(e.kind().to_string())),
                    ("message", Json::Str(e.to_string())),
                ]),
            )),
            CellData::Restored(_) => unreachable!("handled above"),
        }
        Json::obj(fields)
    }
}

/// The outcome of an [`Engine::run`]: all cell outcomes plus run-level
/// timing.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Run name (used for the artifact filename).
    pub name: String,
    /// Workers the engine actually used.
    pub threads: usize,
    /// Wall-clock time of the whole run.
    pub wall: Duration,
    /// Per-cell outcomes, in matrix order.
    pub cells: Vec<CellOutcome>,
}

impl RunResult {
    /// Instructions simulated across all completed cells.
    #[must_use]
    pub fn total_instructions(&self) -> u64 {
        self.cells.iter().map(CellOutcome::instructions).sum()
    }

    /// Aggregate simulated instructions per wall-second, in millions.
    #[must_use]
    pub fn sim_mips(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.total_instructions() as f64 / secs / 1e6
        } else {
            0.0
        }
    }

    /// Cells with the given status.
    #[must_use]
    pub fn count(&self, status: CellStatus) -> u64 {
        self.cells.iter().filter(|c| c.status == status).count() as u64
    }

    /// Whether every cell completed.
    #[must_use]
    pub fn all_ok(&self) -> bool {
        self.cells.iter().all(CellOutcome::is_ok)
    }

    /// The completed cells' measurements (journal-restored cells are
    /// not included — they carry only their stored JSON).
    pub fn ok_cells(&self) -> impl Iterator<Item = &CellResult> {
        self.cells.iter().filter_map(CellOutcome::result)
    }

    /// The run as a `tea-experiment/v2` JSON document. Use
    /// [`artifact::read_artifact`] to read both v2 and the status-less
    /// v1 schema back.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::Str("tea-experiment/v2".to_string())),
            ("name", Json::Str(self.name.clone())),
            ("threads", Json::UInt(self.threads as u64)),
            ("cells_total", Json::UInt(self.cells.len() as u64)),
            ("cells_ok", Json::UInt(self.count(CellStatus::Ok))),
            ("cells_failed", Json::UInt(self.count(CellStatus::Failed))),
            (
                "cells_timed_out",
                Json::UInt(self.count(CellStatus::TimedOut)),
            ),
            ("cells_skipped", Json::UInt(self.count(CellStatus::Skipped))),
            ("wall_seconds", Json::Num(self.wall.as_secs_f64())),
            ("sim_mips", Json::Num(self.sim_mips())),
            (
                "cells",
                Json::Arr(self.cells.iter().map(CellOutcome::to_json).collect()),
            ),
        ])
    }

    /// The artifact with its wall-clock-dependent fields
    /// (`wall_seconds`, `sim_mips`, `threads`) stripped at every depth:
    /// the projection over which a parallel run, a serial run, and a
    /// resumed run of the same matrix are bit-identical.
    #[must_use]
    pub fn deterministic_json(&self) -> Json {
        self.to_json()
            .without_keys(&["wall_seconds", "sim_mips", "threads"])
    }

    /// Writes the JSON artifact to `$TEA_RESULTS_DIR` (default
    /// `target/experiments/` under the workspace root) as
    /// `<name>.json`, returning its path.
    ///
    /// The write is atomic — the document lands in a temp file in the
    /// same directory which is then renamed over the target — so a
    /// crash mid-write never leaves a truncated artifact.
    ///
    /// Cargo runs test and bench binaries with the package directory
    /// as the working directory, so the default anchors to the
    /// outermost ancestor holding a `Cargo.lock` rather than to the
    /// CWD; every harness then writes to the same place.
    pub fn write_artifact(&self) -> std::io::Result<PathBuf> {
        self.write_artifact_with(None)
    }

    /// [`RunResult::write_artifact`] with the artifact-write chaos seam
    /// armed: when the injector decides to fail the first write
    /// attempt, the temp file is abandoned half-written (emulating a
    /// crash or full disk mid-write), cleaned up, and the write
    /// retried — the retry always lands a complete, valid artifact,
    /// and the target path is never exposed to a torn document.
    pub fn write_artifact_with(&self, chaos: Option<&ChaosInjector>) -> std::io::Result<PathBuf> {
        let dir = results_dir();
        std::fs::create_dir_all(&dir)?;
        let safe = safe_name(&self.name);
        let path = dir.join(format!("{safe}.json"));
        let rendered = self.to_json().render_pretty();
        let mut last_err = None;
        for attempt in 0..2u32 {
            // A per-attempt temp name: a failed attempt's leftover can
            // never be renamed over the target by a later one.
            let tmp = dir.join(format!(".{safe}.json.tmp.{}.{attempt}", std::process::id()));
            let wrote = (|| -> std::io::Result<()> {
                let mut file = std::fs::File::create(&tmp)?;
                if chaos.is_some_and(|c| c.fail_artifact_write(attempt)) {
                    file.write_all(&rendered.as_bytes()[..rendered.len() / 2])?;
                    return Err(std::io::Error::other(
                        "chaos: injected artifact write failure after a partial temp write",
                    ));
                }
                file.write_all(rendered.as_bytes())?;
                file.sync_all()
            })();
            match wrote {
                Ok(()) => {
                    std::fs::rename(&tmp, &path)?;
                    return Ok(path);
                }
                Err(e) => {
                    let _ = std::fs::remove_file(&tmp);
                    tea_obs::warn(
                        ENGINE_TARGET,
                        "artifact write failed; torn temp file removed",
                        &[
                            ("attempt", Value::from(u64::from(attempt))),
                            ("path", Value::str(path.display().to_string())),
                            ("error", Value::str(e.to_string())),
                        ],
                    );
                    last_err = Some(e);
                }
            }
        }
        Err(last_err.expect("loop ran at least once"))
    }
}

/// The directory run artifacts and journals land in:
/// `$TEA_RESULTS_DIR`, defaulting to `target/experiments/` under the
/// workspace root.
#[must_use]
pub fn results_dir() -> PathBuf {
    std::env::var("TEA_RESULTS_DIR").map_or_else(
        |_| workspace_root().join("target/experiments"),
        PathBuf::from,
    )
}

/// A run name reduced to filename-safe characters.
#[must_use]
pub fn safe_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '-'
            }
        })
        .collect()
}

/// The outermost ancestor of the current directory that holds a
/// `Cargo.lock` — the workspace root when run under cargo — or the
/// current directory itself when no lockfile is in sight.
#[must_use]
pub fn workspace_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    cwd.ancestors()
        .filter(|dir| dir.join("Cargo.lock").is_file())
        .last()
        .map_or(cwd.clone(), PathBuf::from)
}

/// Builder for the cross product of workloads × configs × intervals ×
/// seeds, each cell carrying one scheme set.
///
/// Cell order is deterministic: workload-major, then config, then
/// interval, then seed — the same order a hand-rolled nested loop
/// would produce.
#[derive(Clone, Debug)]
pub struct Matrix {
    workloads: Vec<Workload>,
    configs: Vec<(String, SimConfig)>,
    intervals: Vec<u64>,
    seeds: Vec<u64>,
    schemes: Vec<Scheme>,
    golden: bool,
    tip: bool,
}

impl Default for Matrix {
    fn default() -> Self {
        Matrix::new()
    }
}

impl Matrix {
    /// An empty matrix with the default config, interval, seed and all
    /// schemes (plus the golden reference).
    #[must_use]
    pub fn new() -> Self {
        Matrix {
            workloads: Vec::new(),
            configs: vec![("default".to_string(), SimConfig::default())],
            intervals: vec![DEFAULT_INTERVAL],
            seeds: vec![DEFAULT_SEED],
            schemes: ALL_SCHEMES.to_vec(),
            golden: true,
            tip: false,
        }
    }

    /// Sets the workloads axis.
    #[must_use]
    pub fn workloads(mut self, workloads: Vec<Workload>) -> Self {
        self.workloads = workloads;
        self
    }

    /// Sets the core-configuration axis.
    #[must_use]
    pub fn configs(mut self, configs: Vec<(&str, SimConfig)>) -> Self {
        self.configs = configs
            .into_iter()
            .map(|(n, c)| (n.to_string(), c))
            .collect();
        self
    }

    /// Sets the sampling-interval axis.
    #[must_use]
    pub fn intervals(mut self, intervals: &[u64]) -> Self {
        self.intervals = intervals.to_vec();
        self
    }

    /// Sets the jitter-seed axis.
    #[must_use]
    pub fn seeds(mut self, seeds: &[u64]) -> Self {
        self.seeds = seeds.to_vec();
        self
    }

    /// Sets the scheme set attached to every cell.
    #[must_use]
    pub fn schemes(mut self, schemes: &[Scheme]) -> Self {
        self.schemes = schemes.to_vec();
        self
    }

    /// Toggles the golden reference on every cell.
    #[must_use]
    pub fn golden(mut self, golden: bool) -> Self {
        self.golden = golden;
        self
    }

    /// Toggles the TIP baseline on every cell.
    #[must_use]
    pub fn tip(mut self, tip: bool) -> Self {
        self.tip = tip;
        self
    }

    /// Expands the cross product into cell specs.
    #[must_use]
    pub fn cells(&self) -> Vec<CellSpec> {
        let mut cells = Vec::with_capacity(
            self.workloads.len() * self.configs.len() * self.intervals.len() * self.seeds.len(),
        );
        for w in &self.workloads {
            for (cfg_name, cfg) in &self.configs {
                for &interval in &self.intervals {
                    for &seed in &self.seeds {
                        let mut spec = CellSpec::for_workload(w)
                            .config(cfg_name.clone(), cfg.clone())
                            .interval(interval)
                            .seed(seed)
                            .schemes(&self.schemes);
                        spec.golden = self.golden;
                        spec.tip = self.tip;
                        cells.push(spec);
                    }
                }
            }
        }
        cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tea_workloads::{lbm, Size};

    #[test]
    fn matrix_expands_workload_major() {
        let m = Matrix::new()
            .workloads(vec![lbm::workload(Size::Test)])
            .configs(vec![
                ("little", SimConfig::little()),
                ("big", SimConfig::big()),
            ])
            .seeds(&[1, 2, 3]);
        let cells = m.cells();
        assert_eq!(cells.len(), 6);
        assert_eq!(cells[0].config_name, "little");
        assert_eq!(cells[0].seed, 1);
        assert_eq!(cells[2].seed, 3);
        assert_eq!(cells[3].config_name, "big");
        assert!(cells.iter().all(|c| c.workload == "lbm"));
    }

    #[test]
    fn one_cell_runs_all_observers_in_one_pass() {
        let spec = CellSpec::new("lbm", lbm::program(Size::Test)).with_tip();
        let run = Engine::serial().quiet().run("unit", vec![spec]);
        assert_eq!(run.cells.len(), 1);
        assert!(run.all_ok());
        assert_eq!(run.cells[0].attempts, 1);
        let c = run.cells[0].result().expect("cell completed");
        assert!(c.stats.cycles > 0);
        // Golden invariant: exact attribution covers every cycle (the
        // u64 counter exactly; the f64 PICS total up to 1/n rounding).
        let golden = c.golden.as_ref().expect("golden attached by default");
        assert_eq!(golden.total_cycles(), c.stats.cycles);
        assert!((golden.pics().total() - c.stats.cycles as f64).abs() < 1e-6);
        // TIP and all six schemes rode the same pass.
        assert!(c.tip.is_some());
        for s in ALL_SCHEMES {
            assert!(c.samples[&s] > 0, "{s} took no samples");
            let e = c.error(s, Granularity::Instruction).unwrap();
            assert!((0.0..=1.0).contains(&e), "{s} error {e}");
        }
    }

    #[test]
    fn stats_only_cells_carry_no_profiles() {
        let spec = CellSpec::new("lbm", lbm::program(Size::Test)).stats_only();
        let run = Engine::serial().quiet().run("stats", vec![spec]);
        let c = run.cells[0].result().expect("cell completed");
        assert!(c.golden.is_none() && c.tip.is_none() && c.pics.is_empty());
        assert!(c.stats.cycles > 0);
        assert!(c.error(Scheme::Tea, Granularity::Instruction).is_none());
    }

    #[test]
    fn json_artifact_is_valid() {
        let spec = CellSpec::new("lbm", lbm::program(Size::Test));
        let run = Engine::serial().quiet().run("json-unit", vec![spec]);
        let doc = run.to_json();
        json::validate(&doc.render()).expect("compact artifact must be valid JSON");
        json::validate(&doc.render_pretty()).expect("pretty artifact must be valid JSON");
        let text = doc.render();
        assert!(text.contains("\"schema\":\"tea-experiment/v2\""));
        assert!(text.contains("\"status\":\"ok\""));
        assert!(text.contains("\"cells_ok\":1"));
        assert!(text.contains("\"error_instruction\""));
        let summary = artifact::read_artifact(&text).expect("engine output reads back");
        assert!(summary.all_ok());
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let base = Duration::from_millis(50);
        let cap = Duration::from_secs(2);
        assert_eq!(backoff_delay(base, cap, 1), Duration::from_millis(50));
        assert_eq!(backoff_delay(base, cap, 2), Duration::from_millis(100));
        assert_eq!(backoff_delay(base, cap, 5), Duration::from_millis(800));
        assert_eq!(backoff_delay(base, cap, 9), cap);
        assert_eq!(backoff_delay(base, cap, 40), cap, "shift saturates");
        assert_eq!(backoff_delay(Duration::ZERO, cap, 3), Duration::ZERO);
    }
}
