//! # tea-exp
//!
//! The shared experiment engine behind every TEA harness.
//!
//! A run is a matrix of *cells* — one `(workload, core config, scheme
//! set, sampling interval, seed)` point each. Cells are shared-nothing:
//! each one owns its program, its core, and its observers, so the
//! engine fans them out across a scoped thread pool with no
//! synchronization beyond handing out indices. All observers of a cell
//! ride one [`tea_sim::core::Core::run`] pass (the paper's out-of-band
//! TraceDoctor methodology: every scheme samples the exact same
//! cycles).
//!
//! Results come back in cell order regardless of completion order, so
//! a parallel run is bit-identical to a serial one — the simulator and
//! profilers are deterministic, and nothing about scheduling leaks into
//! the numbers. [`RunResult::to_json`] serializes a machine-readable
//! artifact (schema `tea-experiment/v1`, see docs/INTERNALS.md);
//! [`RunResult::write_artifact`] drops it under `target/experiments/`.
//!
//! Thread count: `RAYON_NUM_THREADS` (the conventional knob), then
//! `TEA_THREADS`, then the machine's available parallelism.

#![warn(missing_docs)]

pub mod json;

use std::collections::HashMap;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use tea_core::golden::GoldenReference;
use tea_core::nci::NciProfiler;
use tea_core::pics::{Granularity, Pics, UnitMap};
use tea_core::pics_error;
use tea_core::sampling::SampleTimer;
use tea_core::schemes::Scheme;
use tea_core::tagging::TaggingProfiler;
use tea_core::tea::TeaProfiler;
use tea_core::tip::{TipProfile, TipProfiler};
use tea_isa::program::Program;
use tea_sim::core::{Core, SimStats};
use tea_sim::psv::CommitState;
use tea_sim::trace::Observer;
use tea_sim::SimConfig;
use tea_workloads::Workload;

use json::Json;

/// Every sampling scheme the engine can attach to a cell.
pub const ALL_SCHEMES: [Scheme; 6] = [
    Scheme::Tea,
    Scheme::NciTea,
    Scheme::Ibs,
    Scheme::Spe,
    Scheme::Ris,
    Scheme::TeaDispatchTagged,
];

/// The harnesses' default sampling interval (cycles). The paper samples
/// every 800 000 cycles over 10^11+-cycle runs; our runs are ~10^6–10^7
/// cycles, so the interval is scaled to keep the samples-per-instruction
/// density comparable (see DESIGN.md).
pub const DEFAULT_INTERVAL: u64 = 512;

/// Deterministic jitter seed shared by the harnesses.
pub const DEFAULT_SEED: u64 = 42;

/// One point of an experiment matrix: a program simulated under one
/// core configuration with one set of observers.
#[derive(Clone, Debug)]
pub struct CellSpec {
    /// Workload (or ad-hoc program) name, used in reports and JSON.
    pub workload: String,
    /// The program to simulate.
    pub program: Program,
    /// Human-readable name of the core configuration.
    pub config_name: String,
    /// The core configuration.
    pub config: SimConfig,
    /// Sampling interval in cycles (all schemes share one jittered
    /// timer sequence, so they fire in the same cycles).
    pub interval: u64,
    /// Jitter seed of the sampling timers.
    pub seed: u64,
    /// Sampling schemes to attach.
    pub schemes: Vec<Scheme>,
    /// Attach the exact golden reference (needed for error metrics).
    pub golden: bool,
    /// Attach the TIP baseline profiler.
    pub tip: bool,
}

impl CellSpec {
    /// A cell with the default config, interval, seed and all schemes.
    #[must_use]
    pub fn new(workload: impl Into<String>, program: Program) -> Self {
        CellSpec {
            workload: workload.into(),
            program,
            config_name: "default".to_string(),
            config: SimConfig::default(),
            interval: DEFAULT_INTERVAL,
            seed: DEFAULT_SEED,
            schemes: ALL_SCHEMES.to_vec(),
            golden: true,
            tip: false,
        }
    }

    /// A cell for a named workload (clones its program).
    #[must_use]
    pub fn for_workload(w: &Workload) -> Self {
        CellSpec::new(w.name, w.program.clone())
    }

    /// Sets the core configuration (with a name for reports).
    #[must_use]
    pub fn config(mut self, name: impl Into<String>, config: SimConfig) -> Self {
        self.config_name = name.into();
        self.config = config;
        self
    }

    /// Sets the sampling interval.
    #[must_use]
    pub fn interval(mut self, interval: u64) -> Self {
        self.interval = interval;
        self
    }

    /// Sets the sampling jitter seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the scheme set.
    #[must_use]
    pub fn schemes(mut self, schemes: &[Scheme]) -> Self {
        self.schemes = schemes.to_vec();
        self
    }

    /// Attaches the TIP baseline.
    #[must_use]
    pub fn with_tip(mut self) -> Self {
        self.tip = true;
        self
    }

    /// Drops all observers: simulate for [`SimStats`] only.
    #[must_use]
    pub fn stats_only(mut self) -> Self {
        self.schemes.clear();
        self.golden = false;
        self.tip = false;
        self
    }
}

/// The measured outcome of one cell.
#[derive(Clone, Debug)]
pub struct CellResult {
    /// Position of the cell in the run's matrix.
    pub index: usize,
    /// The spec that produced this result (owns the program, so error
    /// metrics can build unit maps without reaching back to the caller).
    pub spec: CellSpec,
    /// Core statistics of the simulation pass.
    pub stats: SimStats,
    /// The exact reference, when `spec.golden` was set.
    pub golden: Option<GoldenReference>,
    /// The TIP baseline profile, when `spec.tip` was set.
    pub tip: Option<TipProfile>,
    /// Sampled PICS per scheme (in sample units).
    pub pics: HashMap<Scheme, Pics>,
    /// Samples taken per scheme.
    pub samples: HashMap<Scheme, u64>,
    /// Wall-clock time of the simulation pass.
    pub wall: Duration,
}

impl CellResult {
    /// The Section 4 error of `scheme` at `granularity`, or `None` if
    /// the cell ran without the golden reference or without the scheme.
    #[must_use]
    pub fn error(&self, scheme: Scheme, granularity: Granularity) -> Option<f64> {
        let golden = self.golden.as_ref()?;
        let pics = self.pics.get(&scheme)?;
        let units = UnitMap::new(&self.spec.program, granularity);
        Some(pics_error(pics, golden.pics(), scheme.event_set(), &units))
    }

    /// Simulated instructions per wall-clock second, in millions.
    #[must_use]
    pub fn sim_mips(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.stats.retired as f64 / secs / 1e6
        } else {
            0.0
        }
    }

    /// Samples taken across all schemes.
    #[must_use]
    pub fn total_samples(&self) -> u64 {
        self.samples.values().sum()
    }

    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("workload", Json::Str(self.spec.workload.clone())),
            ("config", Json::Str(self.spec.config_name.clone())),
            ("interval", Json::UInt(self.spec.interval)),
            ("seed", Json::UInt(self.spec.seed)),
            ("cycles", Json::UInt(self.stats.cycles)),
            ("instructions", Json::UInt(self.stats.retired)),
            ("ipc", Json::Num(self.stats.ipc())),
            (
                "state_cycles",
                Json::Obj(
                    CommitState::ALL
                        .iter()
                        .enumerate()
                        .map(|(i, s)| {
                            (s.name().to_string(), Json::UInt(self.stats.state_cycles[i]))
                        })
                        .collect(),
                ),
            ),
            ("squashes", Json::UInt(self.stats.squashes)),
            ("commit_flushes", Json::UInt(self.stats.commit_flushes)),
            ("mo_violations", Json::UInt(self.stats.mo_violations)),
            ("wall_seconds", Json::Num(self.wall.as_secs_f64())),
            ("sim_mips", Json::Num(self.sim_mips())),
        ];
        fields.push((
            "golden_total_cycles",
            self.golden
                .as_ref()
                .map_or(Json::Null, |g| Json::Num(g.pics().total())),
        ));
        // Iterate spec.schemes (not the HashMaps) so field order is
        // deterministic.
        fields.push((
            "samples",
            Json::Obj(
                self.spec
                    .schemes
                    .iter()
                    .map(|s| (s.name().to_string(), Json::UInt(self.samples[s])))
                    .collect(),
            ),
        ));
        if self.golden.is_some() {
            fields.push((
                "error_instruction",
                Json::Obj(
                    self.spec
                        .schemes
                        .iter()
                        .map(|s| {
                            let e = self.error(*s, Granularity::Instruction).unwrap_or(f64::NAN);
                            (s.name().to_string(), Json::Num(e))
                        })
                        .collect(),
                ),
            ));
        }
        Json::obj(fields)
    }
}

/// Resolves the worker count: `RAYON_NUM_THREADS`, then `TEA_THREADS`,
/// then the machine's available parallelism.
#[must_use]
pub fn threads_from_env() -> usize {
    for var in ["RAYON_NUM_THREADS", "TEA_THREADS"] {
        if let Ok(v) = std::env::var(var) {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// The experiment engine: a worker-pool executor for cell matrices.
#[derive(Clone, Debug)]
pub struct Engine {
    threads: usize,
    progress: bool,
}

impl Engine {
    /// An engine sized by [`threads_from_env`], with progress reporting.
    #[must_use]
    pub fn from_env() -> Self {
        Engine {
            threads: threads_from_env(),
            progress: true,
        }
    }

    /// A single-threaded engine (cells run in matrix order).
    #[must_use]
    pub fn serial() -> Self {
        Engine {
            threads: 1,
            progress: true,
        }
    }

    /// An engine with an explicit worker count.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Engine {
            threads: threads.max(1),
            progress: true,
        }
    }

    /// Disables the per-cell progress line on stderr.
    #[must_use]
    pub fn quiet(mut self) -> Self {
        self.progress = false;
        self
    }

    /// The worker count this engine will use.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every cell and returns the results **in cell order** —
    /// results do not depend on which worker ran which cell, so a
    /// parallel run is bit-identical to [`Engine::serial`].
    #[must_use]
    pub fn run(&self, name: &str, cells: Vec<CellSpec>) -> RunResult {
        let t0 = Instant::now();
        let total = cells.len();
        let workers = self.threads.min(total.max(1));
        // Cells are handed to exactly one worker each (shared-nothing);
        // the slot Mutexes only guard the ownership transfer.
        let slots: Vec<Mutex<Option<CellSpec>>> =
            cells.into_iter().map(|c| Mutex::new(Some(c))).collect();
        let results: Vec<Mutex<Option<CellResult>>> =
            (0..total).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let spec = slots[i]
                        .lock()
                        .expect("cell slot poisoned")
                        .take()
                        .expect("each cell is claimed exactly once");
                    let r = run_cell(i, spec);
                    let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                    if self.progress {
                        eprintln!(
                            "[{name}] {finished:>3}/{total} {:<14} {:<10} {:>8} cycles  \
                             {:>6.2}s  {:>7.2} Msim-inst/s",
                            r.spec.workload,
                            r.spec.config_name,
                            r.stats.cycles,
                            r.wall.as_secs_f64(),
                            r.sim_mips(),
                        );
                    }
                    *results[i].lock().expect("result slot poisoned") = Some(r);
                });
            }
        });
        let cells: Vec<CellResult> = results
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("result slot poisoned")
                    .expect("every cell produces a result")
            })
            .collect();
        RunResult {
            name: name.to_string(),
            threads: workers,
            wall: t0.elapsed(),
            cells,
        }
    }
}

/// Runs one cell: builds its observers, performs the single simulation
/// pass, and packages the measurements.
#[must_use]
pub fn run_cell(index: usize, spec: CellSpec) -> CellResult {
    let t0 = Instant::now();
    let timer = || SampleTimer::with_jitter(spec.interval, spec.interval / 8, spec.seed);
    let mut golden = if spec.golden {
        Some(GoldenReference::new())
    } else {
        None
    };
    let mut tip = if spec.tip {
        Some(TipProfiler::new(timer()))
    } else {
        None
    };
    let mut scheme_obs: Vec<(Scheme, SchemeObserver)> = spec
        .schemes
        .iter()
        .map(|&s| (s, SchemeObserver::new(s, timer())))
        .collect();
    let stats = {
        let mut observers: Vec<&mut dyn Observer> = Vec::new();
        if let Some(g) = golden.as_mut() {
            observers.push(g);
        }
        if let Some(t) = tip.as_mut() {
            observers.push(t);
        }
        for (_, o) in &mut scheme_obs {
            observers.push(o.as_observer());
        }
        Core::new(&spec.program, spec.config.clone()).run(&mut observers)
    };
    let wall = t0.elapsed();
    let mut pics = HashMap::new();
    let mut samples = HashMap::new();
    for (scheme, obs) in scheme_obs {
        samples.insert(scheme, obs.samples());
        pics.insert(scheme, obs.into_pics());
    }
    CellResult {
        index,
        spec,
        stats,
        golden,
        tip: tip.map(|t| t.profile().clone()),
        pics,
        samples,
        wall,
    }
}

/// A scheme's profiler behind one constructor, so cells can hold a
/// heterogeneous observer set in a plain `Vec`.
enum SchemeObserver {
    Tea(TeaProfiler),
    Nci(NciProfiler),
    Tagging(TaggingProfiler),
}

impl SchemeObserver {
    fn new(scheme: Scheme, timer: SampleTimer) -> Self {
        match scheme {
            Scheme::Tea => SchemeObserver::Tea(TeaProfiler::new(timer)),
            Scheme::NciTea => SchemeObserver::Nci(NciProfiler::new(timer)),
            Scheme::Ibs | Scheme::Spe | Scheme::Ris | Scheme::TeaDispatchTagged => {
                SchemeObserver::Tagging(TaggingProfiler::new(scheme, timer))
            }
        }
    }

    fn as_observer(&mut self) -> &mut dyn Observer {
        match self {
            SchemeObserver::Tea(o) => o,
            SchemeObserver::Nci(o) => o,
            SchemeObserver::Tagging(o) => o,
        }
    }

    fn samples(&self) -> u64 {
        match self {
            SchemeObserver::Tea(o) => o.samples(),
            SchemeObserver::Nci(o) => o.samples(),
            SchemeObserver::Tagging(o) => o.samples(),
        }
    }

    fn into_pics(self) -> Pics {
        match self {
            SchemeObserver::Tea(o) => o.into_pics(),
            SchemeObserver::Nci(o) => o.into_pics(),
            SchemeObserver::Tagging(o) => o.into_pics(),
        }
    }
}

/// The outcome of an [`Engine::run`]: all cell results plus run-level
/// timing.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Run name (used for the artifact filename).
    pub name: String,
    /// Workers the engine actually used.
    pub threads: usize,
    /// Wall-clock time of the whole run.
    pub wall: Duration,
    /// Per-cell results, in matrix order.
    pub cells: Vec<CellResult>,
}

impl RunResult {
    /// Instructions simulated across all cells.
    #[must_use]
    pub fn total_instructions(&self) -> u64 {
        self.cells.iter().map(|c| c.stats.retired).sum()
    }

    /// Aggregate simulated instructions per wall-second, in millions.
    #[must_use]
    pub fn sim_mips(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.total_instructions() as f64 / secs / 1e6
        } else {
            0.0
        }
    }

    /// The run as a `tea-experiment/v1` JSON document.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::Str("tea-experiment/v1".to_string())),
            ("name", Json::Str(self.name.clone())),
            ("threads", Json::UInt(self.threads as u64)),
            ("cells_total", Json::UInt(self.cells.len() as u64)),
            ("wall_seconds", Json::Num(self.wall.as_secs_f64())),
            ("sim_mips", Json::Num(self.sim_mips())),
            (
                "cells",
                Json::Arr(self.cells.iter().map(CellResult::to_json).collect()),
            ),
        ])
    }

    /// Writes the JSON artifact to `$TEA_RESULTS_DIR` (default
    /// `target/experiments/` under the workspace root) as
    /// `<name>.json`, returning its path.
    ///
    /// Cargo runs test and bench binaries with the package directory
    /// as the working directory, so the default anchors to the
    /// outermost ancestor holding a `Cargo.lock` rather than to the
    /// CWD; every harness then writes to the same place.
    pub fn write_artifact(&self) -> std::io::Result<PathBuf> {
        let dir = std::env::var("TEA_RESULTS_DIR").map_or_else(
            |_| workspace_root().join("target/experiments"),
            PathBuf::from,
        );
        std::fs::create_dir_all(&dir)?;
        let safe: String = self
            .name
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                    c
                } else {
                    '-'
                }
            })
            .collect();
        let path = dir.join(format!("{safe}.json"));
        let mut file = std::fs::File::create(&path)?;
        file.write_all(self.to_json().render_pretty().as_bytes())?;
        Ok(path)
    }
}

/// The outermost ancestor of the current directory that holds a
/// `Cargo.lock` — the workspace root when run under cargo — or the
/// current directory itself when no lockfile is in sight.
fn workspace_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    cwd.ancestors()
        .filter(|dir| dir.join("Cargo.lock").is_file())
        .last()
        .map_or(cwd.clone(), PathBuf::from)
}

/// Builder for the cross product of workloads × configs × intervals ×
/// seeds, each cell carrying one scheme set.
///
/// Cell order is deterministic: workload-major, then config, then
/// interval, then seed — the same order a hand-rolled nested loop
/// would produce.
#[derive(Clone, Debug)]
pub struct Matrix {
    workloads: Vec<Workload>,
    configs: Vec<(String, SimConfig)>,
    intervals: Vec<u64>,
    seeds: Vec<u64>,
    schemes: Vec<Scheme>,
    golden: bool,
    tip: bool,
}

impl Default for Matrix {
    fn default() -> Self {
        Matrix::new()
    }
}

impl Matrix {
    /// An empty matrix with the default config, interval, seed and all
    /// schemes (plus the golden reference).
    #[must_use]
    pub fn new() -> Self {
        Matrix {
            workloads: Vec::new(),
            configs: vec![("default".to_string(), SimConfig::default())],
            intervals: vec![DEFAULT_INTERVAL],
            seeds: vec![DEFAULT_SEED],
            schemes: ALL_SCHEMES.to_vec(),
            golden: true,
            tip: false,
        }
    }

    /// Sets the workloads axis.
    #[must_use]
    pub fn workloads(mut self, workloads: Vec<Workload>) -> Self {
        self.workloads = workloads;
        self
    }

    /// Sets the core-configuration axis.
    #[must_use]
    pub fn configs(mut self, configs: Vec<(&str, SimConfig)>) -> Self {
        self.configs = configs
            .into_iter()
            .map(|(n, c)| (n.to_string(), c))
            .collect();
        self
    }

    /// Sets the sampling-interval axis.
    #[must_use]
    pub fn intervals(mut self, intervals: &[u64]) -> Self {
        self.intervals = intervals.to_vec();
        self
    }

    /// Sets the jitter-seed axis.
    #[must_use]
    pub fn seeds(mut self, seeds: &[u64]) -> Self {
        self.seeds = seeds.to_vec();
        self
    }

    /// Sets the scheme set attached to every cell.
    #[must_use]
    pub fn schemes(mut self, schemes: &[Scheme]) -> Self {
        self.schemes = schemes.to_vec();
        self
    }

    /// Toggles the golden reference on every cell.
    #[must_use]
    pub fn golden(mut self, golden: bool) -> Self {
        self.golden = golden;
        self
    }

    /// Toggles the TIP baseline on every cell.
    #[must_use]
    pub fn tip(mut self, tip: bool) -> Self {
        self.tip = tip;
        self
    }

    /// Expands the cross product into cell specs.
    #[must_use]
    pub fn cells(&self) -> Vec<CellSpec> {
        let mut cells = Vec::with_capacity(
            self.workloads.len() * self.configs.len() * self.intervals.len() * self.seeds.len(),
        );
        for w in &self.workloads {
            for (cfg_name, cfg) in &self.configs {
                for &interval in &self.intervals {
                    for &seed in &self.seeds {
                        let mut spec = CellSpec::for_workload(w)
                            .config(cfg_name.clone(), cfg.clone())
                            .interval(interval)
                            .seed(seed)
                            .schemes(&self.schemes);
                        spec.golden = self.golden;
                        spec.tip = self.tip;
                        cells.push(spec);
                    }
                }
            }
        }
        cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tea_workloads::{lbm, Size};

    #[test]
    fn matrix_expands_workload_major() {
        let m = Matrix::new()
            .workloads(vec![lbm::workload(Size::Test)])
            .configs(vec![
                ("little", SimConfig::little()),
                ("big", SimConfig::big()),
            ])
            .seeds(&[1, 2, 3]);
        let cells = m.cells();
        assert_eq!(cells.len(), 6);
        assert_eq!(cells[0].config_name, "little");
        assert_eq!(cells[0].seed, 1);
        assert_eq!(cells[2].seed, 3);
        assert_eq!(cells[3].config_name, "big");
        assert!(cells.iter().all(|c| c.workload == "lbm"));
    }

    #[test]
    fn one_cell_runs_all_observers_in_one_pass() {
        let spec = CellSpec::new("lbm", lbm::program(Size::Test)).with_tip();
        let run = Engine::serial().quiet().run("unit", vec![spec]);
        assert_eq!(run.cells.len(), 1);
        let c = &run.cells[0];
        assert!(c.stats.cycles > 0);
        // Golden invariant: exact attribution covers every cycle (the
        // u64 counter exactly; the f64 PICS total up to 1/n rounding).
        let golden = c.golden.as_ref().expect("golden attached by default");
        assert_eq!(golden.total_cycles(), c.stats.cycles);
        assert!((golden.pics().total() - c.stats.cycles as f64).abs() < 1e-6);
        // TIP and all six schemes rode the same pass.
        assert!(c.tip.is_some());
        for s in ALL_SCHEMES {
            assert!(c.samples[&s] > 0, "{s} took no samples");
            let e = c.error(s, Granularity::Instruction).unwrap();
            assert!((0.0..=1.0).contains(&e), "{s} error {e}");
        }
    }

    #[test]
    fn stats_only_cells_carry_no_profiles() {
        let spec = CellSpec::new("lbm", lbm::program(Size::Test)).stats_only();
        let run = Engine::serial().quiet().run("stats", vec![spec]);
        let c = &run.cells[0];
        assert!(c.golden.is_none() && c.tip.is_none() && c.pics.is_empty());
        assert!(c.stats.cycles > 0);
        assert!(c.error(Scheme::Tea, Granularity::Instruction).is_none());
    }

    #[test]
    fn json_artifact_is_valid() {
        let spec = CellSpec::new("lbm", lbm::program(Size::Test));
        let run = Engine::serial().quiet().run("json-unit", vec![spec]);
        let doc = run.to_json();
        json::validate(&doc.render()).expect("compact artifact must be valid JSON");
        json::validate(&doc.render_pretty()).expect("pretty artifact must be valid JSON");
        let text = doc.render();
        assert!(text.contains("\"schema\":\"tea-experiment/v1\""));
        assert!(text.contains("\"error_instruction\""));
    }
}
