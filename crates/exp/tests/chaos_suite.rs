//! The chaos harness's terminal guarantee: every seeded chaos run
//! terminates with a valid, parseable `tea-experiment/v2` artifact
//! whose per-cell statuses accurately reflect what was injected — no
//! wedged engine, no torn artifact, no silently-wrong cell.
//!
//! The tests *recompute* the injector's decisions (it is a pure
//! function of the seed) to predict each cell's status, then assert
//! the run matches the prediction.

use std::sync::Arc;
use std::time::Duration;

use tea_exp::artifact::read_artifact;
use tea_exp::trace_cache::program_fingerprint;
use tea_exp::{CellSpec, CellStatus, ChaosInjector, Engine};
use tea_isa::CapturedTrace;
use tea_workloads::{lbm, xz, Size};

/// The matrix every chaos test runs: two workloads, two seeds each, so
/// one capture per workload is shared by a replaying sibling.
fn matrix() -> Vec<CellSpec> {
    vec![
        CellSpec::for_workload(&lbm::workload(Size::Test)).seed(11),
        CellSpec::for_workload(&lbm::workload(Size::Test)).seed(29),
        CellSpec::for_workload(&xz::workload(Size::Test)).seed(11),
        CellSpec::for_workload(&xz::workload(Size::Test)).seed(29),
    ]
}

/// An engine that retries without sleeping.
fn eager(threads: usize) -> Engine {
    Engine::new(threads)
        .quiet()
        .backoff(Duration::ZERO, Duration::ZERO)
        .max_retries(1)
}

#[test]
fn chaos_runs_terminate_with_accurate_statuses_and_valid_artifacts() {
    // A chaos-free control: per-cell cycle counts, used to decide
    // whether an injected observer fault's cycle is even reachable.
    let control = eager(2).run("chaos-control", matrix());
    assert!(control.all_ok(), "the control run must be clean");
    let cycles: Vec<u64> = control
        .cells
        .iter()
        .map(|c| c.result().expect("ok cell").stats.cycles)
        .collect();

    for seed in [1u64, 2, 3, 7, 13] {
        let injector = ChaosInjector::new(seed);
        let run = eager(2).chaos_seed(seed).run("chaos-suite", matrix());

        // Predict each cell's status from the injector's decisions:
        // only a *persistent* observer fault whose cycle the cell
        // actually reaches survives the retry; every other seam
        // (capture failure, trace corruption, transient panics) must
        // degrade gracefully to an ok cell.
        for (i, cell) in run.cells.iter().enumerate() {
            let fault = injector.observer_fault(i);
            let expect_failed = fault.is_some_and(|f| f.persistent && f.cycle < cycles[i]);
            let expected = if expect_failed {
                CellStatus::Failed
            } else {
                CellStatus::Ok
            };
            assert_eq!(
                cell.status, expected,
                "seed {seed} cell {i}: fault {fault:?}, control cycles {}",
                cycles[i]
            );
        }

        // The artifact renders, parses, and reports the same statuses.
        let summary = read_artifact(&run.to_json().render_pretty())
            .expect("every chaos run must leave a readable artifact");
        assert_eq!(summary.schema, "tea-experiment/v2");
        assert_eq!(summary.cells.len(), run.cells.len());
        for (cell, read_back) in run.cells.iter().zip(&summary.cells) {
            assert_eq!(cell.status, read_back.status);
        }
    }
}

#[test]
fn corrupt_trace_falls_back_live_and_stays_bit_identical() {
    // Find a seed that corrupts lbm's capture without uncaching it and
    // leaves both lbm cells free of observer faults — isolating the
    // trace-integrity seam.
    let p = lbm::program(Size::Test);
    let key = program_fingerprint(&p);
    let encoded_len = CapturedTrace::capture_default(&p)
        .expect("lbm halts")
        .encoded_len();
    let seed = (1..2000u64)
        .find(|&s| {
            let c = ChaosInjector::new(s);
            !c.fail_capture(key)
                && c.corrupt_trace(key, encoded_len).is_some()
                && c.observer_fault(0).is_none()
                && c.observer_fault(1).is_none()
        })
        .expect("some small seed isolates the corruption seam");

    let cells = || {
        vec![
            CellSpec::for_workload(&lbm::workload(Size::Test)).seed(11),
            CellSpec::for_workload(&lbm::workload(Size::Test)).seed(29),
        ]
    };
    // Baseline: pure live interpretation, no cache, no chaos.
    let live = eager(1).trace_cache(false).run("chaos-fallback", cells());
    assert!(live.all_ok());

    let fallback = tea_obs::metrics::global().counter("replay.fallback");
    let before = fallback.get();
    let chaotic = eager(1).chaos_seed(seed).run("chaos-fallback", cells());

    // The first lbm cell replays the corrupted capture, hits the
    // checksum mid-run, quarantines the trace, and transparently
    // re-runs live — same attempt, same seed. The sibling finds the
    // quarantine marker and interprets live directly.
    assert!(chaotic.all_ok(), "fallback must complete the cell");
    assert_eq!(chaotic.cells[0].attempts, 1, "fallback is not a retry");
    assert!(fallback.get() > before, "the fallback must be metered");
    assert_eq!(
        chaotic.deterministic_json().render_pretty(),
        live.deterministic_json().render_pretty(),
        "a fallen-back run must be bit-identical to a pure-live run"
    );
}

#[test]
fn torn_journal_lines_are_skipped_and_resume_merges_bit_identical() {
    // A seed that tears at least one cell's journal record but injects
    // no observer faults: a retried cell would restore with its real
    // `attempts: 2`, which is correct but not bit-identical to an
    // uninterrupted clean run — this test isolates the tear seam.
    let seed = (1..200u64)
        .find(|&s| {
            let c = ChaosInjector::new(s);
            (0..4).any(|i| c.tear_journal(i)) && (0..4).all(|i| c.observer_fault(i).is_none())
        })
        .expect("some small seed tears a journal line without observer faults");
    let injector = ChaosInjector::new(seed);
    let torn: Vec<usize> = (0..4).filter(|&i| injector.tear_journal(i)).collect();

    // Same run name (deterministic_json carries it), but unjournaled
    // so the baseline never touches the journal under test.
    let clean = eager(2).run("chaos-journal", matrix());
    assert!(clean.all_ok());

    let chaotic = eager(2)
        .chaos_seed(seed)
        .run_journaled("chaos-journal", matrix())
        .expect("journal creates");
    // The torn cells' outcomes are intact in-process; only their
    // journal lines are wreckage.
    drop(chaotic);

    // Resume chaos-free: torn (and failed) cells re-run, intact `ok`
    // entries restore verbatim, and the merged artifact is
    // bit-identical to an uninterrupted clean run.
    let resumed = eager(2)
        .resume("chaos-journal", matrix())
        .expect("journal reopens");
    assert!(resumed.all_ok(), "torn cells {torn:?} must re-run cleanly");
    assert_eq!(
        resumed.deterministic_json().render_pretty(),
        clean.deterministic_json().render_pretty(),
    );
    // At least one cell actually exercised the tear: it cannot have
    // been restored from the journal (its line was wreckage), so it
    // re-ran fresh.
    for &i in &torn {
        if resumed.cells[i].status == CellStatus::Ok {
            assert!(
                resumed.cells[i].result().is_some() || resumed.cells[i].attempts > 0,
                "torn cell {i} must have re-run, not restored"
            );
        }
    }
}

#[test]
fn failed_first_artifact_write_retries_and_lands_a_valid_file() {
    // A seed whose artifact seam fails the first write attempt.
    let seed = (1..64u64)
        .find(|&s| ChaosInjector::new(s).fail_artifact_write(0))
        .expect("half of all seeds fail the first write");
    let injector = Arc::new(ChaosInjector::new(seed));

    let run = eager(1).run(
        "chaos-artifact-write",
        vec![CellSpec::for_workload(&lbm::workload(Size::Test))],
    );
    let path = run
        .write_artifact_with(Some(&injector))
        .expect("the retry must land the artifact");
    let text = std::fs::read_to_string(&path).expect("artifact exists");
    let summary = read_artifact(&text).expect("artifact is whole, not torn");
    assert!(summary.all_ok());

    // No torn temp wreckage left beside it.
    let dir = path.parent().expect("artifact has a directory");
    let leftovers: Vec<String> = std::fs::read_dir(dir)
        .expect("results dir lists")
        .filter_map(Result::ok)
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.contains("chaos-artifact-write") && n.contains(".tmp."))
        .collect();
    assert!(
        leftovers.is_empty(),
        "torn temp files left behind: {leftovers:?}"
    );
}
