//! The trace cache's cardinal guarantee: a profiled run that replays a
//! captured instruction trace is bit-identical to one that re-interprets
//! the workload from scratch. The captured stream is the committed
//! correct path, which depends only on program content — so no artifact
//! byte may change when the cache is on, off, or pre-warmed.

use tea_core::pics::Granularity;
use tea_exp::{Engine, Matrix, RunResult, TraceCache, ALL_SCHEMES};
use tea_workloads::{deepsjeng, lbm, xz, Size};

fn matrix() -> Matrix {
    Matrix::new()
        .workloads(vec![
            lbm::workload(Size::Test),
            xz::workload(Size::Test),
            deepsjeng::workload(Size::Test),
        ])
        .seeds(&[11, 42])
}

/// Everything measurement-like about a run, excluding wall-clock
/// timing (the only field allowed to differ between runs).
fn fingerprint(run: &RunResult) -> Vec<String> {
    run.cells
        .iter()
        .map(|c| {
            let c = c.result().expect("cell completed");
            let golden = c.golden.as_ref().expect("golden attached");
            let mut s = format!(
                "{} seed={} stats={:?} golden={:016x}",
                c.spec.workload,
                c.spec.seed,
                c.stats,
                golden.pics().total().to_bits(),
            );
            for &scheme in &ALL_SCHEMES {
                let e = c.error(scheme, Granularity::Instruction).unwrap();
                s.push_str(&format!(
                    " {}:{}:{:016x}",
                    scheme.name(),
                    c.samples[&scheme],
                    e.to_bits(),
                ));
            }
            s
        })
        .collect()
}

#[test]
fn replayed_runs_match_interpreted_runs_bit_for_bit() {
    let interpreted = Engine::serial()
        .quiet()
        .trace_cache(false)
        .run("identity", matrix().cells());
    let replayed = Engine::serial().quiet().run("identity", matrix().cells());

    assert_eq!(interpreted.cells.len(), 6);
    assert_eq!(
        fingerprint(&interpreted),
        fingerprint(&replayed),
        "replay must not perturb any measurement"
    );
    assert_eq!(
        interpreted.deterministic_json().render_pretty(),
        replayed.deterministic_json().render_pretty(),
        "the deterministic artifact projection must be byte-identical"
    );
}

#[test]
fn prewarmed_shared_cache_is_also_bit_identical() {
    let engine = Engine::serial().quiet();
    let cache = TraceCache::new();
    // First run captures every trace and publishes every golden
    // reference; the second replays everything from the shared cache.
    let cold = engine.run_with_cache("identity", matrix().cells(), &cache);
    let warm = engine.run_with_cache("identity", matrix().cells(), &cache);
    assert!(cold.all_ok() && warm.all_ok());
    assert_eq!(fingerprint(&cold), fingerprint(&warm));
    assert_eq!(
        cold.deterministic_json().render_pretty(),
        warm.deterministic_json().render_pretty(),
    );

    // And the shared-cache artifact matches a cache-off run exactly.
    let off = Engine::serial()
        .quiet()
        .trace_cache(false)
        .run("identity", matrix().cells());
    assert_eq!(
        off.deterministic_json().render_pretty(),
        warm.deterministic_json().render_pretty(),
        "pre-warmed shared cache must not perturb artifacts"
    );
}

#[test]
fn parallel_replay_matches_serial_replay() {
    let serial = Engine::new(1).quiet().run("identity", matrix().cells());
    let parallel = Engine::new(4).quiet().run("identity", matrix().cells());
    assert_eq!(parallel.threads, 4);
    assert_eq!(fingerprint(&serial), fingerprint(&parallel));
    assert_eq!(
        serial.deterministic_json().render_pretty(),
        parallel.deterministic_json().render_pretty(),
    );
}
