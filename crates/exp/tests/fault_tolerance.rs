//! The tentpole guarantee of the fault-tolerant engine: one bad cell —
//! a panicking harness, a diverging program, a wild jump, an invalid
//! configuration — never takes the run down or perturbs its neighbours.

use std::time::Duration;

use tea_exp::{CellSpec, CellStatus, Engine, ExpError, Fault};
use tea_workloads::faulty::{self, FaultMode};
use tea_workloads::{lbm, Size};

fn clean_spec(seed: u64) -> CellSpec {
    CellSpec::for_workload(&lbm::workload(Size::Test)).seed(seed)
}

/// An engine that retries without actually sleeping.
fn eager(threads: usize) -> Engine {
    Engine::new(threads)
        .quiet()
        .backoff(Duration::ZERO, Duration::ZERO)
}

#[test]
fn a_panicking_cell_is_isolated_and_does_not_perturb_neighbours() {
    let clean = eager(1).run("ft-clean", vec![clean_spec(11), clean_spec(29)]);
    let faulty = eager(2).run(
        "ft-clean",
        vec![
            clean_spec(11),
            clean_spec(7).fault(Fault::PanicUntilAttempt(u32::MAX)),
            clean_spec(29),
        ],
    );

    assert_eq!(faulty.cells[1].status, CellStatus::Failed);
    match faulty.cells[1].error() {
        Some(ExpError::Panic { message }) => {
            assert!(
                message.contains("injected panic"),
                "panic payload must survive: {message:?}"
            );
        }
        other => panic!("expected a captured panic, got {other:?}"),
    }
    assert!(!faulty.all_ok());
    assert_eq!(faulty.count(CellStatus::Ok), 2);

    // The surviving cells are bit-identical to the clean run's cells.
    let strip = |j: &tea_exp::json::Json| {
        j.without_keys(&["wall_seconds", "sim_mips", "threads"])
            .render_pretty()
    };
    assert_eq!(
        strip(&faulty.cells[0].to_json()),
        strip(&clean.cells[0].to_json()),
        "a neighbour's panic must not change cell 0"
    );
    assert_eq!(
        strip(&faulty.cells[2].to_json()),
        strip(&clean.cells[1].to_json()),
        "a neighbour's panic must not change cell 2"
    );
}

#[test]
fn transient_faults_are_retried_with_attempt_accounting() {
    // Fails on attempt 1, succeeds on attempt 2: one retry suffices.
    let spec = clean_spec(3).fault(Fault::PanicUntilAttempt(2));
    let run = eager(1).max_retries(1).run("ft-retry", vec![spec]);
    assert_eq!(run.cells[0].status, CellStatus::Ok);
    assert_eq!(run.cells[0].attempts, 2);
    assert!(run.cells[0].result().is_some());

    // Same for an injected error (the non-panic transient path).
    let spec = clean_spec(3).fault(Fault::ErrorUntilAttempt(3));
    let run = eager(1).max_retries(2).run("ft-retry", vec![spec]);
    assert_eq!(run.cells[0].status, CellStatus::Ok);
    assert_eq!(run.cells[0].attempts, 3);
}

#[test]
fn exhausted_retries_leave_a_failed_cell_with_the_last_error() {
    let spec = clean_spec(3).fault(Fault::PanicUntilAttempt(u32::MAX));
    let run = eager(1).max_retries(2).run("ft-exhaust", vec![spec]);
    assert_eq!(run.cells[0].status, CellStatus::Failed);
    assert_eq!(run.cells[0].attempts, 3, "initial try + 2 retries");
    assert_eq!(run.cells[0].error().map(ExpError::kind), Some("panic"));
}

#[test]
fn a_diverging_cell_times_out_at_its_cycle_budget_and_is_not_retried() {
    let spec = CellSpec::for_workload(&faulty::workload(Size::Test, FaultMode::Diverge))
        .stats_only()
        .budget(20_000);
    let run = eager(1).max_retries(3).run("ft-diverge", vec![spec]);
    let cell = &run.cells[0];
    assert_eq!(cell.status, CellStatus::TimedOut);
    assert_eq!(
        cell.attempts, 1,
        "a deterministic timeout must not be retried"
    );
    match cell.error() {
        Some(ExpError::Timeout { budget }) => assert_eq!(*budget, 20_000),
        other => panic!("expected a timeout, got {other:?}"),
    }
}

#[test]
fn an_engine_wide_budget_applies_to_cells_without_their_own() {
    let cells = vec![
        CellSpec::for_workload(&faulty::workload(Size::Test, FaultMode::Diverge)).stats_only(),
        CellSpec::for_workload(&faulty::workload(Size::Test, FaultMode::Clean)).stats_only(),
    ];
    let run = eager(1).cell_budget(20_000).run("ft-budget", cells);
    assert_eq!(run.cells[0].status, CellStatus::TimedOut);
    assert_eq!(
        run.cells[1].status,
        CellStatus::Ok,
        "budget is generous for a halting cell"
    );
}

#[test]
fn a_wild_jump_surfaces_as_a_structured_sim_error() {
    let spec =
        CellSpec::for_workload(&faulty::workload(Size::Test, FaultMode::EscapePc)).stats_only();
    let run = eager(1).max_retries(1).run("ft-escape", vec![spec]);
    let cell = &run.cells[0];
    assert_eq!(cell.status, CellStatus::Failed);
    assert_eq!(cell.attempts, 1, "a program fault is deterministic");
    assert_eq!(cell.error().map(ExpError::kind), Some("sim"));
    let message = cell.error().expect("failed cell has an error").to_string();
    assert!(
        message.contains(&format!("{:#x}", faulty::WILD_ADDR)),
        "the escaped pc must be in the message: {message}"
    );
}

#[test]
fn an_invalid_config_fails_fast_with_the_offending_field() {
    let cfg = tea_sim::SimConfig {
        commit_width: 0,
        ..tea_sim::SimConfig::default()
    };
    let spec = clean_spec(3).config("broken", cfg);
    let run = eager(1).max_retries(5).run("ft-config", vec![spec]);
    let cell = &run.cells[0];
    assert_eq!(cell.status, CellStatus::Failed);
    assert_eq!(cell.attempts, 1, "config errors are not transient");
    assert_eq!(cell.error().map(ExpError::kind), Some("config"));
    let message = cell.error().expect("failed cell has an error").to_string();
    assert!(
        message.contains("commit_width"),
        "the offending field must be named: {message}"
    );
}

#[test]
fn fail_fast_skips_the_cells_after_the_first_failure() {
    let cells = vec![
        clean_spec(1).fault(Fault::PanicUntilAttempt(u32::MAX)),
        clean_spec(2),
        clean_spec(3),
    ];
    let run = eager(1).fail_fast().run("ft-failfast", cells);
    assert_eq!(run.cells[0].status, CellStatus::Failed);
    assert_eq!(run.cells[1].status, CellStatus::Skipped);
    assert_eq!(run.cells[2].status, CellStatus::Skipped);
    assert_eq!(run.cells[1].attempts, 0, "skipped cells never run");
    assert_eq!(run.count(CellStatus::Skipped), 2);
}

#[test]
fn the_v2_artifact_marks_exactly_the_bad_cells() {
    // The acceptance scenario: one panicking cell and one over-budget
    // cell in an otherwise healthy suite.
    let cells = vec![
        clean_spec(11),
        clean_spec(7).fault(Fault::PanicUntilAttempt(u32::MAX)),
        CellSpec::for_workload(&faulty::workload(Size::Test, FaultMode::Diverge))
            .stats_only()
            .budget(20_000),
        clean_spec(29),
    ];
    let run = eager(2).run("ft-acceptance", cells);
    let text = run.to_json().render_pretty();
    let summary = tea_exp::artifact::read_artifact(&text).expect("artifact reads back");
    assert_eq!(summary.schema, "tea-experiment/v2");
    let statuses: Vec<CellStatus> = summary.cells.iter().map(|c| c.status).collect();
    assert_eq!(
        statuses,
        vec![
            CellStatus::Ok,
            CellStatus::Failed,
            CellStatus::TimedOut,
            CellStatus::Ok
        ]
    );
    assert_eq!(summary.cells[1].error_kind.as_deref(), Some("panic"));
    assert_eq!(summary.cells[2].error_kind.as_deref(), Some("timeout"));
    assert!(summary.cells[0].cycles.is_some());
    assert!(summary.cells[1].cycles.is_none());
}
