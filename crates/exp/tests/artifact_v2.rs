//! Property tests of the `tea-experiment/v2` artifact: any mix of ok,
//! failed, timed-out and skipped cells — with adversarial strings in
//! the error messages — survives render → parse → summarise intact.

use proptest::prelude::*;
use tea_exp::artifact::read_artifact;
use tea_exp::json::Json;
use tea_exp::CellStatus;

fn status_of(code: u8) -> CellStatus {
    match code % 4 {
        0 => CellStatus::Ok,
        1 => CellStatus::Failed,
        2 => CellStatus::TimedOut,
        _ => CellStatus::Skipped,
    }
}

const ERROR_KINDS: [&str; 4] = ["panic", "timeout", "config", "sim"];

/// Builds a v2 artifact document the way the engine shapes it: ok cells
/// carry measurements, the rest carry an error object.
fn synth_artifact(cells: &[(u8, u32, u64, u64, u64)]) -> Json {
    let rendered: Vec<Json> = cells
        .iter()
        .enumerate()
        .map(|(i, &(code, attempts, cycles, instructions, seed))| {
            let status = status_of(code);
            let mut fields = vec![
                ("workload", Json::Str(format!("w{i}"))),
                ("config", Json::Str("default".to_string())),
                ("interval", Json::UInt(512)),
                ("seed", Json::UInt(seed)),
                ("status", Json::Str(status.name().to_string())),
                ("attempts", Json::UInt(u64::from(attempts))),
            ];
            if status == CellStatus::Ok {
                fields.push(("cycles", Json::UInt(cycles)));
                fields.push(("instructions", Json::UInt(instructions)));
                fields.push(("wall_seconds", Json::Num(0.25)));
            } else {
                // Hostile message content: quotes, backslashes, control
                // characters, non-ASCII — the escaper must hold.
                let message = format!("cell \"{seed}\" \\ died\n\tat cycle {cycles} \u{1f980}");
                fields.push((
                    "error",
                    Json::obj(vec![
                        (
                            "kind",
                            Json::Str(ERROR_KINDS[code as usize % 4].to_string()),
                        ),
                        ("message", Json::Str(message)),
                    ]),
                ));
            }
            Json::obj(fields)
        })
        .collect();
    let ok = cells
        .iter()
        .filter(|c| status_of(c.0) == CellStatus::Ok)
        .count();
    Json::obj(vec![
        ("schema", Json::Str("tea-experiment/v2".to_string())),
        ("name", Json::Str("prop".to_string())),
        ("cells_ok", Json::UInt(ok as u64)),
        ("cells", Json::Arr(rendered)),
    ])
}

proptest! {
    #[test]
    fn v2_artifacts_round_trip(
        cells in prop::collection::vec(
            (0u8..8, 1u32..5, 0u64..1_000_000, 0u64..1_000_000, 0u64..1000),
            0..10,
        )
    ) {
        let doc = synth_artifact(&cells);
        for text in [doc.render(), doc.render_pretty()] {
            let summary = read_artifact(&text).expect("rendered artifact parses");
            prop_assert_eq!(&summary.schema, "tea-experiment/v2");
            prop_assert_eq!(summary.cells.len(), cells.len());
            for (i, (cell, &(code, attempts, cycles, instructions, seed))) in
                summary.cells.iter().zip(&cells).enumerate()
            {
                let status = status_of(code);
                prop_assert_eq!(&cell.workload, &format!("w{i}"));
                prop_assert_eq!(cell.seed, seed);
                prop_assert_eq!(cell.status, status);
                prop_assert_eq!(cell.attempts, attempts);
                if status == CellStatus::Ok {
                    prop_assert_eq!(cell.cycles, Some(cycles));
                    prop_assert_eq!(cell.instructions, Some(instructions));
                    prop_assert!(cell.error_kind.is_none());
                } else {
                    prop_assert!(cell.cycles.is_none());
                    let kind = ERROR_KINDS[code as usize % 4];
                    prop_assert_eq!(cell.error_kind.as_deref(), Some(kind));
                    let message = cell.error_message.as_deref().expect("message kept");
                    prop_assert!(
                        message.contains('"') && message.contains('\\')
                            && message.contains('\n') && message.contains('\u{1f980}'),
                        "hostile characters must survive the round trip: {:?}",
                        message
                    );
                }
            }
            let ok = summary.count(CellStatus::Ok);
            prop_assert_eq!(
                summary.doc.get("cells_ok").and_then(Json::as_u64),
                Some(ok as u64)
            );
            prop_assert_eq!(summary.all_ok(), ok == cells.len());
        }
    }

    /// The parser itself never panics on mangled artifacts: any prefix
    /// of a valid document either parses or errors cleanly.
    #[test]
    fn truncated_artifacts_error_cleanly(
        cells in prop::collection::vec(
            (0u8..8, 1u32..5, 0u64..1_000_000, 0u64..1_000_000, 0u64..1000),
            1..6,
        ),
        cut in 0usize..2000,
    ) {
        let text = synth_artifact(&cells).render_pretty();
        let mut cut = cut.min(text.len());
        while !text.is_char_boundary(cut) {
            cut -= 1;
        }
        let _ = read_artifact(&text[..cut]);
    }
}
