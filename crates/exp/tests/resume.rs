//! Checkpoint-resume: a journaled run that lost cells (crash, panic,
//! timeout) is completed by `Engine::resume`, and the merged artifact
//! is bit-identical to an uninterrupted run.

use std::time::Duration;

use tea_exp::journal::Journal;
use tea_exp::{CellSpec, CellStatus, Engine, Fault};
use tea_workloads::{deepsjeng, lbm, Size};

fn specs() -> Vec<CellSpec> {
    vec![
        CellSpec::for_workload(&lbm::workload(Size::Test)).seed(11),
        CellSpec::for_workload(&deepsjeng::workload(Size::Test)).seed(11),
        CellSpec::for_workload(&lbm::workload(Size::Test)).seed(29),
    ]
}

fn eager(threads: usize) -> Engine {
    Engine::new(threads)
        .quiet()
        .backoff(Duration::ZERO, Duration::ZERO)
}

#[test]
fn resume_reruns_only_the_failed_cell_and_merges_bit_identically() {
    let name = "resume-merge";
    // First pass: the middle cell panics and lands in the journal as
    // failed; the outer two complete and are journaled ok.
    let mut broken = specs();
    broken[1] = broken[1].clone().fault(Fault::PanicUntilAttempt(u32::MAX));
    let first = eager(2)
        .run_journaled(name, broken)
        .expect("journal created");
    assert_eq!(first.count(CellStatus::Ok), 2);
    assert_eq!(first.cells[1].status, CellStatus::Failed);
    assert!(Journal::path_for(name).is_file());

    // Second pass with the fault removed: the ok cells are restored
    // from the journal (not re-simulated), the failed cell re-runs.
    let resumed = eager(2).resume(name, specs()).expect("journal reopened");
    assert!(resumed.all_ok());
    assert!(
        resumed.cells[0].result().is_none() && resumed.cells[0].is_ok(),
        "cell 0 must be restored from the journal, not re-run"
    );
    assert!(
        resumed.cells[1].result().is_some(),
        "the failed cell must re-run"
    );
    assert!(
        resumed.cells[2].result().is_none() && resumed.cells[2].is_ok(),
        "cell 2 must be restored from the journal, not re-run"
    );

    // The merged artifact is bit-identical to a clean uninterrupted run.
    let clean = eager(1).run(name, specs());
    assert_eq!(
        resumed.deterministic_json().render_pretty(),
        clean.deterministic_json().render_pretty(),
        "resume must merge to the uninterrupted artifact, byte for byte"
    );
}

#[test]
fn a_changed_spec_invalidates_its_journal_entry() {
    let name = "resume-fingerprint";
    let first = eager(1)
        .run_journaled(name, specs())
        .expect("journal created");
    assert!(first.all_ok());

    // Same matrix but one cell's seed changed: its fingerprint no
    // longer matches, so it re-runs; the untouched cells restore.
    let mut changed = specs();
    changed[2] = CellSpec::for_workload(&lbm::workload(Size::Test)).seed(31);
    let resumed = eager(1).resume(name, changed).expect("journal reopened");
    assert!(resumed.all_ok());
    assert!(resumed.cells[0].result().is_none(), "unchanged: restored");
    assert!(resumed.cells[1].result().is_none(), "unchanged: restored");
    assert!(
        resumed.cells[2].result().is_some(),
        "stale measurements must never be spliced into a changed cell"
    );
}

#[test]
fn a_torn_journal_tail_only_costs_a_rerun_of_that_cell() {
    let name = "resume-torn";
    let first = eager(1)
        .run_journaled(name, specs())
        .expect("journal created");
    assert!(first.all_ok());

    // Simulate a crash mid-append: keep the first journal line intact
    // and tear the second one in half.
    let path = Journal::path_for(name);
    let text = std::fs::read_to_string(&path).expect("journal readable");
    let mut lines = text.lines();
    let keep = lines.next().expect("journal has a first line").to_string();
    let torn = lines.next().expect("journal has a second line");
    let torn = &torn[..torn.len() / 2];
    std::fs::write(&path, format!("{keep}\n{torn}")).expect("journal rewritten");

    let resumed = eager(1).resume(name, specs()).expect("journal reopened");
    assert!(resumed.all_ok());
    assert!(resumed.cells[0].result().is_none(), "intact entry restores");
    assert!(resumed.cells[1].result().is_some(), "torn entry re-runs");
    assert!(resumed.cells[2].result().is_some(), "lost entry re-runs");

    let clean = eager(1).run(name, specs());
    assert_eq!(
        resumed.deterministic_json().render_pretty(),
        clean.deterministic_json().render_pretty()
    );
}

#[test]
fn resume_without_a_journal_is_a_plain_run() {
    let name = "resume-fresh-never-journaled";
    let _ = std::fs::remove_file(Journal::path_for(name));
    let run = eager(1).resume(name, specs()).expect("journal created");
    assert!(run.all_ok());
    assert!(
        run.cells.iter().all(|c| c.result().is_some()),
        "nothing to restore: every cell runs"
    );
    let clean = eager(1).run(name, specs());
    assert_eq!(
        run.deterministic_json().render_pretty(),
        clean.deterministic_json().render_pretty()
    );
}
