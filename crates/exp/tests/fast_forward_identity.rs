//! Stall fast-forward bit-identity at the experiment level.
//!
//! The fast-forwarding core must be indistinguishable from the ticked
//! core everywhere a number escapes the engine: same statistics, same
//! PICS, same per-scheme errors, same deterministic artifact bytes.
//! This pins the entire skip machinery — quiescence detection, jump
//! bounds, bulk accounting, folded observer delivery — against the
//! cycle-by-cycle reference across three workloads, serially and in
//! parallel. Both runs use the *same* config name, so the artifacts
//! differ only if the simulation itself does.

use tea_exp::{Engine, Matrix, RunResult};
use tea_sim::SimConfig;
use tea_workloads::{deepsjeng, lbm, xz, Size};

fn run(threads: usize, fast_forward: bool) -> RunResult {
    let cfg = SimConfig {
        fast_forward,
        ..SimConfig::default()
    };
    let matrix = Matrix::new()
        .workloads(vec![
            lbm::workload(Size::Test),
            xz::workload(Size::Test),
            deepsjeng::workload(Size::Test),
        ])
        .configs(vec![("default", cfg)])
        .seeds(&[11]);
    Engine::new(threads)
        .quiet()
        .run("ff-identity", matrix.cells())
}

#[test]
fn fast_forward_artifact_is_byte_identical_serial() {
    let ff = run(1, true);
    let tk = run(1, false);
    assert_eq!(
        ff.deterministic_json().render_pretty(),
        tk.deterministic_json().render_pretty(),
        "fast-forward must not change a single artifact byte (serial)"
    );
}

#[test]
fn fast_forward_artifact_is_byte_identical_parallel() {
    let ff = run(4, true);
    let tk = run(4, false);
    assert!(ff.threads > 1, "3-cell matrix must actually fan out");
    assert_eq!(
        ff.deterministic_json().render_pretty(),
        tk.deterministic_json().render_pretty(),
        "fast-forward must not change a single artifact byte (parallel)"
    );
}
