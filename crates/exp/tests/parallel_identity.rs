//! The engine's cardinal guarantee: a parallel run is bit-identical to
//! a serial run of the same matrix. Cells are shared-nothing and the
//! simulator is deterministic, so nothing about worker scheduling may
//! leak into the numbers.

use tea_core::pics::Granularity;
use tea_exp::{Engine, Matrix, RunResult, ALL_SCHEMES};
use tea_workloads::{deepsjeng, lbm, Size};

/// Everything measurement-like about a run, excluding wall-clock
/// timing (the only field allowed to differ between runs).
fn fingerprint(run: &RunResult) -> Vec<String> {
    run.cells
        .iter()
        .map(|c| {
            let c = c.result().expect("cell completed");
            let golden = c.golden.as_ref().expect("golden attached");
            let mut s = format!(
                "{} cfg={} seed={} stats={:?} golden={:016x}",
                c.spec.workload,
                c.spec.config_name,
                c.spec.seed,
                c.stats,
                golden.pics().total().to_bits(),
            );
            for &scheme in &ALL_SCHEMES {
                let e_i = c.error(scheme, Granularity::Instruction).unwrap();
                let e_f = c.error(scheme, Granularity::Function).unwrap();
                s.push_str(&format!(
                    " {}:{}:{:016x}:{:016x}",
                    scheme.name(),
                    c.samples[&scheme],
                    e_i.to_bits(),
                    e_f.to_bits(),
                ));
            }
            s
        })
        .collect()
}

#[test]
fn parallel_2x2_matrix_is_bit_identical_to_serial() {
    let matrix = Matrix::new()
        .workloads(vec![
            lbm::workload(Size::Test),
            deepsjeng::workload(Size::Test),
        ])
        .seeds(&[11, 29]);

    let serial = Engine::new(1).quiet().run("identity", matrix.cells());
    let parallel = Engine::new(4).quiet().run("identity", matrix.cells());

    assert_eq!(serial.cells.len(), 4);
    assert_eq!(serial.threads, 1);
    assert_eq!(parallel.threads, 4, "2x2 matrix must actually fan out");
    assert_eq!(
        fingerprint(&serial),
        fingerprint(&parallel),
        "parallel run must be bit-identical to serial"
    );
    assert_eq!(
        serial.deterministic_json().render_pretty(),
        parallel.deterministic_json().render_pretty(),
        "the deterministic artifact projection must be byte-identical"
    );
}

#[test]
fn results_come_back_in_matrix_order() {
    let matrix = Matrix::new()
        .workloads(vec![
            lbm::workload(Size::Test),
            deepsjeng::workload(Size::Test),
        ])
        .seeds(&[11, 29]);
    let cells = matrix.cells();
    let expected: Vec<(String, u64)> = cells.iter().map(|c| (c.workload.clone(), c.seed)).collect();
    let run = Engine::new(3).quiet().run("order", cells);
    let got: Vec<(String, u64)> = run
        .cells
        .iter()
        .map(|c| (c.spec.workload.clone(), c.spec.seed))
        .collect();
    assert_eq!(got, expected);
    for (i, c) in run.cells.iter().enumerate() {
        assert_eq!(c.index, i);
    }
}

#[test]
fn thread_count_honours_rayon_env_convention() {
    // Safe here: this integration-test binary's other tests never read
    // the environment.
    std::env::set_var("RAYON_NUM_THREADS", "3");
    std::env::set_var("TEA_THREADS", "7");
    assert_eq!(tea_exp::threads_from_env(), 3, "RAYON_NUM_THREADS wins");
    std::env::remove_var("RAYON_NUM_THREADS");
    assert_eq!(
        tea_exp::threads_from_env(),
        7,
        "TEA_THREADS is the fallback"
    );
    std::env::remove_var("TEA_THREADS");
    assert!(tea_exp::threads_from_env() >= 1);
}
