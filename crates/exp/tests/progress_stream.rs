//! Live progress streaming against a real parallel engine run: the
//! JSON-lines feed must be well-formed end to end, the final
//! `run_finish` event must report exactly the cell statuses the run
//! result (and hence the experiment artifact) carries, and the
//! recorder's timeline must be consistent with the schedule.

use std::sync::Arc;
use std::time::Duration;

use tea_exp::json::{parse, Json};
use tea_exp::{Engine, Matrix, ProgressRecorder, ProgressStream};
use tea_workloads::{deepsjeng, lbm, Size};

fn temp_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tea-progress-it-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn stream_matches_run_result_and_recorder_matches_schedule() {
    let dir = temp_dir();
    let path = dir.join("progress.jsonl");
    let matrix = Matrix::new()
        .workloads(vec![
            lbm::workload(Size::Test),
            deepsjeng::workload(Size::Test),
        ])
        .seeds(&[11, 29]);
    let recorder = Arc::new(ProgressRecorder::new());
    let run = Engine::new(2)
        .quiet()
        .progress_sink(Arc::new(ProgressStream::create(&path).unwrap()))
        .progress_sink(Arc::clone(&recorder) as _)
        .heartbeat_interval(Duration::from_millis(1))
        .run("progress-it", matrix.cells());
    assert!(run.all_ok());

    let content = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = content.lines().filter(|l| !l.is_empty()).collect();
    assert_eq!(lines[0], "{\"schema\":\"tea-progress/v1\"}");
    let events: Vec<Json> = lines[1..]
        .iter()
        .map(|l| parse(l).expect("every streamed line is valid JSON"))
        .collect();
    let kind = |e: &Json| e.get("t").and_then(Json::as_str).unwrap().to_string();
    let count = |k: &str| events.iter().filter(|e| kind(e) == k).count();

    assert_eq!(count("run_start"), 1);
    assert_eq!(count("cell_queued"), run.cells.len());
    assert_eq!(count("cell_start"), run.cells.len());
    assert_eq!(count("cell_finish"), run.cells.len());
    assert!(count("heartbeat") >= 1, "1ms heartbeat fires at least once");
    assert_eq!(count("run_finish"), 1);

    // The stream's last event is the run_finish, and its statuses are
    // exactly the run result's cell statuses in matrix order — the
    // same projection the experiment artifact stores.
    let last = events.last().unwrap();
    assert_eq!(kind(last), "run_finish");
    let streamed: Vec<String> = last
        .get("statuses")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .map(|s| s.as_str().unwrap().to_string())
        .collect();
    let actual: Vec<String> = run
        .cells
        .iter()
        .map(|c| c.status.name().to_string())
        .collect();
    assert_eq!(streamed, actual);

    // Every cell_finish carries a monotone done/total pair.
    let mut seen_done = 0;
    for e in events.iter().filter(|e| kind(e) == "cell_finish") {
        let done = e.get("done").and_then(Json::as_u64).unwrap();
        assert!(done > seen_done, "done must advance monotonically");
        seen_done = done;
        assert_eq!(
            e.get("total").and_then(Json::as_u64),
            Some(run.cells.len() as u64)
        );
    }

    // The recorder saw the same schedule: one interval per cell, on a
    // valid worker, closing after it opened.
    let cells = recorder.cells();
    assert_eq!(cells.len(), run.cells.len());
    for cell in &cells {
        assert!(cell.worker < 2, "worker id in range: {}", cell.worker);
        assert!(cell.end_ns >= cell.start_ns);
        assert_eq!(cell.status, "ok");
        assert!(run.cells.iter().any(|c| c.spec.workload == cell.workload));
    }
    let _ = std::fs::remove_dir_all(&dir);
}
