//! `lbm`-like kernel: the paper's first case study (Figures 10 and 11).
//!
//! SPEC's 519.lbm streams a lattice-Boltzmann grid whose working set far
//! exceeds the LLC. Its inner loop (i) loads ~3 fresh cache lines per
//! cell through 11 load instructions, (ii) contains enough compute to
//! fill the ROB — which stops the core from issuing the next iteration's
//! loads early enough to hide their latency — and (iii) writes 19
//! streams of results, so optimising the loads shifts the bottleneck to
//! store bandwidth (DR-SQ). The fix the paper evaluates is software
//! prefetching with a carefully chosen distance.
//!
//! [`program_with_prefetch`] reproduces exactly this structure; the
//! prefetch distance is in iterations, as in Figure 11.

use tea_isa::asm::Asm;
use tea_isa::program::Program;
use tea_isa::reg::{FReg, Reg};

use crate::{Size, Workload};

/// Base address of the three source streams (read-only; never written,
/// so the interpreter backs them with zero pages for free). The bases
/// are staggered by five cache lines each so concurrent streams spread
/// across L1 sets instead of thrashing one set, as a real array layout
/// would.
const SRC_BASE: [u64; 3] = [0x1000_0000, 0x2000_0140, 0x3000_0280];
/// Base address of the 19 destination streams.
const DST_BASE: u64 = 0x8000_0000;
/// Distance between destination streams (staggered across L1 sets).
const DST_STRIDE: u64 = 0x0100_0140;
/// Number of destination streams ("lbm writes 19 cache lines in each
/// iteration" — one 8-byte slot per stream per iteration here, giving
/// 19 fresh lines every 8 iterations plus 3 fresh load lines per
/// iteration).
const DST_STREAMS: usize = 19;
/// Filler compute per iteration so the loop body fills the ROB (the
/// mechanism the paper identifies).
const FILLER_OPS: usize = 80;

/// Number of iterations by size.
#[must_use]
pub fn iterations(size: Size) -> u64 {
    size.pick(600, 9_000)
}

/// Builds the lbm kernel with software prefetches `distance` iterations
/// ahead (0 disables prefetching, the unmodified benchmark).
#[must_use]
pub fn program_with_prefetch(size: Size, distance: u64) -> Program {
    let iters = iterations(size);
    let mut a = Asm::new();
    a.func("stream_collide");
    // S0..S2: the three source streams; S3: destination cursor;
    // T0/T1: loop counter/limit.
    a.li(Reg::S0, SRC_BASE[0] as i64);
    a.li(Reg::S1, SRC_BASE[1] as i64);
    a.li(Reg::S2, SRC_BASE[2] as i64);
    a.li(Reg::S3, DST_BASE as i64);
    a.li(Reg::T0, 0);
    a.li(Reg::T1, iters as i64);
    a.fli_d(FReg::FS0, 1.5);
    a.fli_d(FReg::FS1, 0.25);
    let top = a.new_label();
    a.bind(top);
    if distance > 0 {
        // Prefetch the three cache lines the body will need `distance`
        // iterations from now (the paper's custom ROCC prefetch).
        let d = (distance * 64) as i64;
        a.prefetch(Reg::S0, d);
        a.prefetch(Reg::S1, d);
        a.prefetch(Reg::S2, d);
    }
    // 11 loads across the three fresh lines (4 + 4 + 3).
    a.fld(FReg::FT0, Reg::S0, 0);
    a.fld(FReg::FT1, Reg::S0, 8);
    a.fld(FReg::FT2, Reg::S0, 16);
    a.fld(FReg::FT3, Reg::S0, 24);
    a.fld(FReg::FT4, Reg::S1, 0);
    a.fld(FReg::FT5, Reg::S1, 8);
    a.fld(FReg::FT6, Reg::S1, 16);
    a.fld(FReg::FT7, Reg::S1, 24);
    a.fld(FReg::FT8, Reg::S2, 0);
    a.fld(FReg::FT9, Reg::S2, 8);
    a.fld(FReg::FT10, Reg::S2, 16);
    // Collision compute: three short dependent chains, then a cross
    // combination (models the BGK collision operator).
    a.fadd_d(FReg::FA0, FReg::FT0, FReg::FT1);
    a.fmul_d(FReg::FA0, FReg::FA0, FReg::FT2);
    a.fmadd_d(FReg::FA0, FReg::FA0, FReg::FS0, FReg::FT3);
    a.fadd_d(FReg::FA1, FReg::FT4, FReg::FT5);
    a.fmul_d(FReg::FA1, FReg::FA1, FReg::FT6);
    a.fmadd_d(FReg::FA1, FReg::FA1, FReg::FS1, FReg::FT7);
    a.fadd_d(FReg::FA2, FReg::FT8, FReg::FT9);
    a.fmadd_d(FReg::FA2, FReg::FA2, FReg::FS0, FReg::FT10);
    a.fmadd_d(FReg::FA3, FReg::FA0, FReg::FA1, FReg::FA2);
    a.fadd_d(FReg::FA4, FReg::FA3, FReg::FS1);
    a.fmul_d(FReg::FA5, FReg::FA3, FReg::FS0);
    // Filler compute that fills the ROB: independent integer ops.
    for i in 0..FILLER_OPS {
        let r = [Reg::A0, Reg::A1, Reg::A2, Reg::A3][i % 4];
        a.addi(r, r, 1);
    }
    // 19 result stores, one per destination stream (one 8-byte slot per
    // iteration: a fresh line per stream every 8 iterations).
    for k in 0..DST_STREAMS {
        let f = [FReg::FA3, FReg::FA4, FReg::FA5][k % 3];
        a.fsd(f, Reg::S3, (k as u64 * DST_STRIDE) as i64);
    }
    // Advance the streams.
    a.addi(Reg::S0, Reg::S0, 64);
    a.addi(Reg::S1, Reg::S1, 64);
    a.addi(Reg::S2, Reg::S2, 64);
    a.addi(Reg::S3, Reg::S3, 8);
    a.addi(Reg::T0, Reg::T0, 1);
    a.blt(Reg::T0, Reg::T1, top);
    a.halt();
    a.finish().expect("lbm kernel must assemble")
}

/// The unmodified benchmark (no software prefetching).
#[must_use]
pub fn program(size: Size) -> Program {
    program_with_prefetch(size, 0)
}

/// The [`Workload`] wrapper for the suite.
#[must_use]
pub fn workload(size: Size) -> Workload {
    Workload {
        name: "lbm",
        description: "lattice-Boltzmann streaming: LLC-missing loads under a ROB-filling \
                      body, 19 store streams (Figures 10-11 case study)",
        program: program(size),
    }
}

/// Address of the most performance-critical load instruction (the first
/// `fld` of the body — the paper's Figure 10 `lw`-equivalent).
#[must_use]
pub fn critical_load_addr(size: Size, distance: u64) -> u64 {
    // Skip the 8 setup instructions and any prefetches.
    let p = program_with_prefetch(size, distance);
    let addr = p
        .iter()
        .find(|(_, i)| i.mnemonic() == "fld")
        .map(|(a, _)| a)
        .expect("kernel contains loads");
    addr
}

/// Address of the first result store instruction (Figure 11's
/// performance-critical store).
#[must_use]
pub fn critical_store_addr(size: Size, distance: u64) -> u64 {
    let p = program_with_prefetch(size, distance);
    let addr = p
        .iter()
        .find(|(_, i)| i.mnemonic() == "fsd")
        .map(|(a, _)| a)
        .expect("kernel contains stores");
    addr
}

#[cfg(test)]
mod tests {
    use super::*;
    use tea_sim::core::simulate;
    use tea_sim::psv::Event;
    use tea_sim::SimConfig;

    #[test]
    fn kernel_halts_and_writes_all_streams() {
        let p = program(Size::Test);
        let mut m = tea_isa::Machine::new(&p);
        m.run(10_000_000);
        assert!(m.is_halted());
        // Every destination stream received values.
        for k in 0..DST_STREAMS as u64 {
            let v = m.load_f64(DST_BASE + k * DST_STRIDE);
            assert!(v.is_finite());
        }
    }

    #[test]
    fn unprefetched_kernel_is_load_bound() {
        let p = program(Size::Test);
        let s = simulate(&p, SimConfig::default(), &mut []);
        // The critical loads must miss the LLC.
        assert!(
            s.event_insts[Event::StLlc as usize] > iterations(Size::Test) / 2,
            "LLC misses: {}",
            s.event_insts[Event::StLlc as usize]
        );
    }

    #[test]
    fn prefetching_speeds_lbm_up() {
        let base = simulate(&program(Size::Test), SimConfig::default(), &mut []);
        let opt = simulate(
            &program_with_prefetch(Size::Test, 3),
            SimConfig::default(),
            &mut [],
        );
        let speedup = base.cycles as f64 / opt.cycles as f64;
        assert!(
            speedup > 1.1,
            "prefetch distance 3 must speed lbm up, got {speedup:.3}"
        );
    }

    #[test]
    fn prefetching_shifts_pressure_to_stores() {
        use tea_sim::psv::CommitState;
        let base = simulate(&program(Size::Test), SimConfig::default(), &mut []);
        let opt = simulate(
            &program_with_prefetch(Size::Test, 4),
            SimConfig::default(),
            &mut [],
        );
        // Faster iterations raise store-queue pressure: the share of
        // time the ROB drains behind blocked stores (the DR-SQ wall)
        // must grow, exactly as the paper's Figure 11 shows.
        let drained_share =
            |s: &tea_sim::SimStats| s.cycles_in(CommitState::Drained) as f64 / s.cycles as f64;
        assert!(
            drained_share(&opt) > drained_share(&base),
            "drained share must grow: {:.3} -> {:.3}",
            drained_share(&base),
            drained_share(&opt)
        );
        // And the DR-SQ event must be present in both runs.
        assert!(opt.event_insts[Event::DrSq as usize] > 100);
    }

    #[test]
    fn critical_instruction_addresses_are_loads_and_stores() {
        let p = program(Size::Test);
        let la = critical_load_addr(Size::Test, 0);
        let sa = critical_store_addr(Size::Test, 0);
        assert_eq!(p.inst_at(la).unwrap().mnemonic(), "fld");
        assert_eq!(p.inst_at(sa).unwrap().mnemonic(), "fsd");
    }
}
