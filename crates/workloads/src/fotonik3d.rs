//! `fotonik3d`-like kernel: a streaming FDTD stencil whose misses are
//! pure cache misses.
//!
//! Figure 6c shows fotonik3d dominated by *solitary* ST-L1 / ST-LLC
//! components — sequential sweeps are TLB-friendly (a page lasts 512
//! 8-byte elements), so optimisation can focus on cache utilisation
//! alone. The contrast with bwaves/omnetpp is the point of the figure.

use tea_isa::asm::Asm;
use tea_isa::program::Program;
use tea_isa::reg::{FReg, Reg};

use crate::{Size, Workload};

const FIELD_A: u64 = 0x1000_0000;
const FIELD_B: u64 = 0x2000_0000;
const FIELD_OUT: u64 = 0x3000_0000;

/// Number of stencil points by size.
#[must_use]
pub fn iterations(size: Size) -> u64 {
    size.pick(12_000, 120_000)
}

/// Builds the kernel.
#[must_use]
pub fn program(size: Size) -> Program {
    let iters = iterations(size);
    let mut a = Asm::new();
    a.func("update_field");
    a.li(Reg::S0, FIELD_A as i64);
    a.li(Reg::S1, FIELD_B as i64);
    a.li(Reg::S2, FIELD_OUT as i64);
    a.li(Reg::T0, 0);
    a.li(Reg::T1, iters as i64);
    a.fli_d(FReg::FS0, 0.125);
    let top = a.new_label();
    a.bind(top);
    // Three sequential streams; a fresh line every 8 elements.
    a.fld(FReg::FT0, Reg::S0, 0);
    a.fld(FReg::FT1, Reg::S0, 8);
    a.fld(FReg::FT2, Reg::S1, 0);
    a.fsub_d(FReg::FT3, FReg::FT1, FReg::FT0);
    a.fmadd_d(FReg::FT4, FReg::FT3, FReg::FS0, FReg::FT2);
    a.fsd(FReg::FT4, Reg::S2, 0);
    a.addi(Reg::S0, Reg::S0, 8);
    a.addi(Reg::S1, Reg::S1, 8);
    a.addi(Reg::S2, Reg::S2, 8);
    a.addi(Reg::T0, Reg::T0, 1);
    a.blt(Reg::T0, Reg::T1, top);
    a.halt();
    a.finish().expect("fotonik3d kernel must assemble")
}

/// The [`Workload`] wrapper.
#[must_use]
pub fn workload(size: Size) -> Workload {
    Workload {
        name: "fotonik3d",
        description: "sequential FDTD stencil streams: solitary cache-miss \
                      signatures, TLB-friendly (Figure 6c)",
        program: program(size),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tea_sim::core::simulate;
    use tea_sim::psv::Event;
    use tea_sim::SimConfig;

    #[test]
    fn cache_misses_without_tlb_misses() {
        let s = simulate(&program(Size::Test), SimConfig::default(), &mut []);
        let st_l1 = s.event_insts[Event::StL1 as usize];
        let st_tlb = s.event_insts[Event::StTlb as usize];
        assert!(
            st_l1 > iterations(Size::Test) / 16,
            "streams must miss: {st_l1}"
        );
        assert!(
            st_tlb * 20 < st_l1,
            "sequential streams are TLB-friendly: {st_tlb} TLB vs {st_l1} L1"
        );
    }

    #[test]
    fn stencil_computes_expected_values() {
        let p = program(Size::Test);
        let mut m = tea_isa::Machine::new(&p);
        m.run(10_000_000);
        assert!(m.is_halted());
        // With zero-filled inputs the output is zero but written.
        assert_eq!(m.load_f64(FIELD_OUT), 0.0);
    }
}
