//! Random kernel generator for property-based testing.
//!
//! Generates small, guaranteed-terminating loop kernels with a random
//! mix of integer/FP compute, loads, stores, prefetches and
//! data-dependent branches. Used by the cross-crate property tests to
//! check simulator invariants (every cycle attributed, dense retire
//! streams, determinism) over a wide space of programs.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tea_isa::asm::Asm;
use tea_isa::program::Program;
use tea_isa::reg::{FReg, Reg};

use crate::{Size, Workload};

const DATA_BASE: u64 = 0x0090_0000;
/// Data region the random kernels touch (bounded so runs stay fast).
const DATA_WORDS: u64 = 1 << 16;

/// Builds a random but deterministic kernel from `seed`.
///
/// The kernel is a single loop of `iters` iterations whose body holds
/// `body_ops` random operations; it always halts.
#[must_use]
pub fn random_kernel(seed: u64, iters: u64, body_ops: usize) -> Program {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut a = Asm::new();
    a.func("random_kernel");
    a.li(Reg::S0, DATA_BASE as i64);
    a.li(Reg::S1, seed as i64 | 1); // LCG state
    a.li(Reg::S2, 6364136223846793005);
    a.li(Reg::S3, 1442695040888963407);
    a.li(Reg::T0, 0);
    a.li(Reg::T1, iters as i64);
    a.fli_d(FReg::FS0, 1.25);
    let top = a.new_label();
    a.bind(top);
    // Refresh the LCG so branches and addresses are data-dependent.
    a.mul(Reg::S1, Reg::S1, Reg::S2);
    a.add(Reg::S1, Reg::S1, Reg::S3);
    let data = [Reg::A0, Reg::A1, Reg::A2, Reg::A3, Reg::A4, Reg::A5];
    let fdata = [FReg::FA0, FReg::FA1, FReg::FA2, FReg::FA3];
    for _ in 0..body_ops {
        let rd = data[rng.gen_range(0..data.len())];
        let rs = data[rng.gen_range(0..data.len())];
        let fd = fdata[rng.gen_range(0..fdata.len())];
        let fs = fdata[rng.gen_range(0..fdata.len())];
        let offset = (rng.gen_range(0..DATA_WORDS) * 8) as i64;
        match rng.gen_range(0..14u32) {
            0 => a.add(rd, rd, rs),
            1 => a.addi(rd, rd, rng.gen_range(-64..64)),
            2 => a.xor(rd, rd, rs),
            3 => a.mul(rd, rd, rs),
            4 => a.slli(rd, rs, rng.gen_range(0..8)),
            5 => a.ld(rd, Reg::S0, offset),
            6 => a.sd(rs, Reg::S0, offset),
            7 => a.fld(fd, Reg::S0, offset),
            8 => a.fsd(fs, Reg::S0, offset),
            9 => a.prefetch(Reg::S0, offset),
            10 => a.fadd_d(fd, fd, fs),
            11 => a.fmul_d(fd, fd, fs),
            12 => {
                // A short data-dependent forward branch.
                let skip = a.new_label();
                a.srli(Reg::T2, Reg::S1, rng.gen_range(30..60));
                a.andi(Reg::T2, Reg::T2, 1);
                a.beq(Reg::T2, Reg::ZERO, skip);
                a.addi(rd, rd, 1);
                a.bind(skip);
            }
            _ => a.div(rd, rd, rs),
        }
    }
    a.addi(Reg::T0, Reg::T0, 1);
    a.blt(Reg::T0, Reg::T1, top);
    a.halt();
    a.finish().expect("random kernel must assemble")
}

/// A [`Workload`] wrapper for a random kernel (size picks iterations).
#[must_use]
pub fn workload(seed: u64, size: Size) -> Workload {
    Workload {
        name: "synthetic",
        description: "random property-test kernel",
        program: random_kernel(seed, size.pick(200, 2_000), 24),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_kernels_halt() {
        for seed in 0..20 {
            let p = random_kernel(seed, 50, 16);
            let mut m = tea_isa::Machine::new(&p);
            m.run(5_000_000);
            assert!(m.is_halted(), "seed {seed} did not halt");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = random_kernel(7, 10, 12);
        let b = random_kernel(7, 10, 12);
        assert_eq!(a.insts(), b.insts());
    }
}
