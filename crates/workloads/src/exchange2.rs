//! `exchange2`-like kernel: cache-resident, branch-heavy integer puzzle
//! search.
//!
//! SPEC's 548.exchange2 solves sudoku variants: its working set fits in
//! the L1 caches and its time goes to integer compute and data-dependent
//! branches. Figure 6d uses it as the benchmark where even IBS does
//! *least badly* — most components are Base, so only the stack heights
//! differ. The kernel mixes an LCG-driven candidate generator, small
//! table lookups, and validation branches.

use tea_isa::asm::Asm;
use tea_isa::program::Program;
use tea_isa::reg::Reg;

use crate::{Size, Workload};

const BOARD_BASE: u64 = 0x0020_0000;
/// Board storage: 4 KiB, L1-resident.
const BOARD_WORDS: u64 = 512;

/// Number of candidate placements by size.
#[must_use]
pub fn iterations(size: Size) -> u64 {
    size.pick(15_000, 150_000)
}

/// Builds the kernel.
#[must_use]
pub fn program(size: Size) -> Program {
    let iters = iterations(size);
    let mut a = Asm::new();
    a.func("try_digit");
    a.li(Reg::S0, BOARD_BASE as i64);
    a.li(Reg::S1, 0x5eed_2023); // LCG state
    a.li(Reg::S2, 6364136223846793005);
    a.li(Reg::S3, 1442695040888963407);
    a.li(Reg::T0, 0);
    a.li(Reg::T1, iters as i64);
    let top = a.new_label();
    let conflict = a.new_label();
    let place = a.new_label();
    let next = a.new_label();
    a.bind(top);
    // Generate a candidate cell and digit.
    a.mul(Reg::S1, Reg::S1, Reg::S2);
    a.add(Reg::S1, Reg::S1, Reg::S3);
    a.srli(Reg::T2, Reg::S1, 40);
    a.andi(Reg::T2, Reg::T2, (BOARD_WORDS - 1) as i64);
    a.slli(Reg::T3, Reg::T2, 3);
    a.add(Reg::T3, Reg::S0, Reg::T3);
    a.ld(Reg::T4, Reg::T3, 0); // current cell value (L1 hit)
    a.srli(Reg::T5, Reg::S1, 13);
    a.andi(Reg::T5, Reg::T5, 8);
    // Validation: branch on cell state and candidate parity.
    a.bne(Reg::T4, Reg::ZERO, conflict);
    a.andi(Reg::T6, Reg::S1, 3);
    a.beq(Reg::T6, Reg::ZERO, place);
    a.add(Reg::A0, Reg::A0, Reg::T5);
    a.j(next);
    a.bind(place);
    a.addi(Reg::T5, Reg::T5, 1);
    a.sd(Reg::T5, Reg::T3, 0);
    a.addi(Reg::A1, Reg::A1, 1);
    a.j(next);
    a.bind(conflict);
    // Backtrack: clear the cell, count the conflict.
    a.sd(Reg::ZERO, Reg::T3, 0);
    a.addi(Reg::A2, Reg::A2, 1);
    a.bind(next);
    a.addi(Reg::T0, Reg::T0, 1);
    a.blt(Reg::T0, Reg::T1, top);
    a.halt();
    a.finish().expect("exchange2 kernel must assemble")
}

/// The [`Workload`] wrapper.
#[must_use]
pub fn workload(size: Size) -> Workload {
    Workload {
        name: "exchange2",
        description: "cache-resident branch-heavy integer puzzle search: mostly Base \
                      components plus branch mispredicts (Figure 6d)",
        program: program(size),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tea_sim::core::simulate;
    use tea_sim::psv::Event;
    use tea_sim::SimConfig;

    #[test]
    fn branches_mispredict_but_memory_behaves() {
        let s = simulate(&program(Size::Test), SimConfig::default(), &mut []);
        assert!(
            s.event_insts[Event::FlMb as usize] > iterations(Size::Test) / 20,
            "data-dependent branches must mispredict"
        );
        // Cache-resident: data-side misses are negligible.
        assert!(
            s.event_insts[Event::StLlc as usize] < iterations(Size::Test) / 100,
            "exchange2 is cache-resident"
        );
    }

    #[test]
    fn placements_and_conflicts_both_happen() {
        let p = program(Size::Test);
        let mut m = tea_isa::Machine::new(&p);
        m.run(20_000_000);
        assert!(m.is_halted());
        assert!(m.int_reg(Reg::A1) > 0, "some placements");
        assert!(m.int_reg(Reg::A2) > 0, "some conflicts");
    }
}
