//! `cactuBSSN`-like kernel: numerical relativity — a very wide FP
//! expression per grid point.
//!
//! CactuBSSN evaluates dozens of FP operations per stencil point, so the
//! loop is compute-bound with high instruction-level parallelism: most
//! time is Base (FP pipelines saturated), with a streaming ST-L1 tail as
//! grid lines are fetched.

use tea_isa::asm::Asm;
use tea_isa::program::Program;
use tea_isa::reg::{FReg, Reg};

use crate::{Size, Workload};

const GRID_A: u64 = 0x1000_0000;
const GRID_B: u64 = 0x2000_0200;
const GRID_OUT: u64 = 0x3000_0400;

/// Number of grid points by size.
#[must_use]
pub fn iterations(size: Size) -> u64 {
    size.pick(3_000, 30_000)
}

/// Builds the kernel.
#[must_use]
pub fn program(size: Size) -> Program {
    let iters = iterations(size);
    let mut a = Asm::new();
    a.func("bssn_rhs");
    a.li(Reg::S0, GRID_A as i64);
    a.li(Reg::S1, GRID_B as i64);
    a.li(Reg::S2, GRID_OUT as i64);
    a.li(Reg::T0, 0);
    a.li(Reg::T1, iters as i64);
    a.fli_d(FReg::FS0, 0.5);
    a.fli_d(FReg::FS1, -0.0625);
    a.fli_d(FReg::FS2, 2.0);
    let top = a.new_label();
    a.bind(top);
    // Load the metric components for this point.
    a.fld(FReg::FT0, Reg::S0, 0);
    a.fld(FReg::FT1, Reg::S0, 8);
    a.fld(FReg::FT2, Reg::S0, 16);
    a.fld(FReg::FT3, Reg::S1, 0);
    a.fld(FReg::FT4, Reg::S1, 8);
    // A wide FP expression: four independent chains, then combine.
    // (Models the Ricci tensor evaluation's ILP.)
    a.fmadd_d(FReg::FA0, FReg::FT0, FReg::FS0, FReg::FT3);
    a.fmul_d(FReg::FA0, FReg::FA0, FReg::FT1);
    a.fmadd_d(FReg::FA0, FReg::FA0, FReg::FS2, FReg::FT2);
    a.fmadd_d(FReg::FA1, FReg::FT1, FReg::FS1, FReg::FT4);
    a.fmul_d(FReg::FA1, FReg::FA1, FReg::FA1);
    a.fmadd_d(FReg::FA1, FReg::FA1, FReg::FS0, FReg::FT0);
    a.fsub_d(FReg::FA2, FReg::FT2, FReg::FT3);
    a.fmul_d(FReg::FA2, FReg::FA2, FReg::FS2);
    a.fmadd_d(FReg::FA2, FReg::FA2, FReg::FT4, FReg::FT1);
    a.fadd_d(FReg::FA3, FReg::FT0, FReg::FT4);
    a.fmul_d(FReg::FA3, FReg::FA3, FReg::FS1);
    a.fmadd_d(FReg::FA3, FReg::FA3, FReg::FA3, FReg::FS0);
    // Combine and store two outputs.
    a.fmadd_d(FReg::FA4, FReg::FA0, FReg::FA1, FReg::FA2);
    a.fmadd_d(FReg::FA5, FReg::FA4, FReg::FS0, FReg::FA3);
    a.fsd(FReg::FA4, Reg::S2, 0);
    a.fsd(FReg::FA5, Reg::S2, 8);
    a.addi(Reg::S0, Reg::S0, 24);
    a.addi(Reg::S1, Reg::S1, 16);
    a.addi(Reg::S2, Reg::S2, 16);
    a.addi(Reg::T0, Reg::T0, 1);
    a.blt(Reg::T0, Reg::T1, top);
    a.halt();
    a.finish().expect("cactuBSSN kernel must assemble")
}

/// The [`Workload`] wrapper.
#[must_use]
pub fn workload(size: Size) -> Workload {
    Workload {
        name: "cactuBSSN",
        description: "wide FP stencil expressions: compute-bound with high ILP, \
                      streaming cache-miss tail",
        program: program(size),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tea_sim::core::simulate;
    use tea_sim::psv::CommitState;
    use tea_sim::SimConfig;

    #[test]
    fn compute_bound_profile() {
        let s = simulate(&program(Size::Test), SimConfig::default(), &mut []);
        assert!(s.ipc() > 1.2, "cactuBSSN is ILP-rich, ipc {}", s.ipc());
        let compute = s.cycles_in(CommitState::Compute) as f64 / s.cycles as f64;
        assert!(compute > 0.4, "compute share {compute:.2}");
    }
}
