//! `omnetpp`-like kernel: discrete-event simulation modelled as pointer
//! chasing over a scattered heap with data-dependent branches.
//!
//! Figure 6b shows omnetpp's top instructions carrying combined
//! (ST-L1, ST-TLB) and (ST-LLC, ST-TLB) signatures — dependent loads
//! walking linked event structures that are scattered across more pages
//! than the L1 TLB covers and more lines than the LLC holds comfortably.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use tea_isa::asm::Asm;
use tea_isa::program::Program;
use tea_isa::reg::Reg;

use crate::{Size, Workload};

const HEAP_BASE: u64 = 0x1000_0000;
/// Bytes between nodes (one cache line each).
const NODE_STRIDE: u64 = 64;

/// Number of heap nodes by size (the ring the chase walks). The `Ref`
/// heap is 3 MiB — larger than the 2 MiB LLC.
#[must_use]
pub fn node_count(size: Size) -> u64 {
    size.pick(16_384, 49_152)
}

/// Number of chase steps by size.
#[must_use]
pub fn iterations(size: Size) -> u64 {
    size.pick(4_000, 40_000)
}

/// Builds the kernel: a shuffled singly-linked ring with a payload word
/// per node, walked with a branch on the payload parity.
#[must_use]
pub fn program(size: Size) -> Program {
    let nodes = node_count(size);
    let iters = iterations(size);
    let mut a = Asm::new();
    a.func("schedule_events");

    // Build the shuffled ring in the initial memory image.
    let mut order: Vec<u64> = (1..nodes).collect();
    let mut rng = SmallRng::seed_from_u64(0x0e77 + nodes);
    order.shuffle(&mut rng);
    let addr_of = |i: u64| HEAP_BASE + i * NODE_STRIDE;
    let mut cur = 0u64;
    let mut payload_state = 0x9e3779b97f4a7c15u64;
    for &next in order.iter().chain(std::iter::once(&0)) {
        payload_state = payload_state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        a.init_word(addr_of(cur), addr_of(next));
        a.init_word(addr_of(cur) + 8, payload_state >> 32);
        cur = next;
    }

    a.li(Reg::S0, HEAP_BASE as i64); // current node
    a.li(Reg::T0, 0);
    a.li(Reg::T1, iters as i64);
    let top = a.new_label();
    let even = a.new_label();
    let done_node = a.new_label();
    a.bind(top);
    // The dependent chase: the next pointer is in the node itself.
    a.ld(Reg::S1, Reg::S0, 0);
    // Payload-dependent branch (event kind dispatch).
    a.ld(Reg::T2, Reg::S0, 8);
    a.andi(Reg::T3, Reg::T2, 1);
    a.beq(Reg::T3, Reg::ZERO, even);
    a.add(Reg::A0, Reg::A0, Reg::T2);
    a.slli(Reg::T4, Reg::T2, 1);
    a.add(Reg::A1, Reg::A1, Reg::T4);
    a.j(done_node);
    a.bind(even);
    a.xor(Reg::A2, Reg::A2, Reg::T2);
    a.bind(done_node);
    a.add(Reg::S0, Reg::S1, Reg::ZERO);
    a.addi(Reg::T0, Reg::T0, 1);
    a.blt(Reg::T0, Reg::T1, top);
    a.halt();
    a.finish().expect("omnetpp kernel must assemble")
}

/// The [`Workload`] wrapper.
#[must_use]
pub fn workload(size: Size) -> Workload {
    Workload {
        name: "omnetpp",
        description: "discrete-event pointer chasing over a scattered heap with \
                      payload-dependent branches (Figure 6b)",
        program: program(size),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tea_sim::core::simulate;
    use tea_sim::psv::{CommitState, Event};
    use tea_sim::SimConfig;

    #[test]
    fn ring_is_a_single_cycle() {
        let p = program(Size::Test);
        let mut m = tea_isa::Machine::new(&p);
        // Walk the init image directly.
        let mut seen = 0u64;
        let mut cur = HEAP_BASE;
        loop {
            cur = m.load_u64(cur);
            seen += 1;
            if cur == HEAP_BASE {
                break;
            }
            assert!(seen <= node_count(Size::Test), "ring must close");
        }
        assert_eq!(seen, node_count(Size::Test));
        m.run(10_000_000);
        assert!(m.is_halted());
    }

    #[test]
    fn chase_stalls_commit_with_cache_and_tlb_events() {
        let s = simulate(&program(Size::Test), SimConfig::default(), &mut []);
        assert!(
            s.cycles_in(CommitState::Stalled) > s.cycles / 3,
            "dependent chase must be stall-bound"
        );
        assert!(s.event_insts[Event::StL1 as usize] > iterations(Size::Test) / 2);
        assert!(s.event_insts[Event::StTlb as usize] > 0);
        assert!(
            s.event_insts[Event::FlMb as usize] > 0,
            "payload branches mispredict"
        );
    }
}
