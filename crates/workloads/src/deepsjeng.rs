//! `deepsjeng`-like kernel: alpha-beta chess search — integer compute,
//! unpredictable branches, and hash-table probes.
//!
//! Models the mix the real benchmark shows: mostly Base and FL-MB
//! components with occasional transposition-table misses (the table is
//! LLC-resident but L1-evicting).

use tea_isa::asm::Asm;
use tea_isa::program::Program;
use tea_isa::reg::Reg;

use crate::{Size, Workload};

const TT_BASE: u64 = 0x0030_0000;
/// Transposition table: 512 KiB (L1-evicting, LLC-resident).
const TT_WORDS: u64 = 65_536;

/// Number of search nodes by size.
#[must_use]
pub fn iterations(size: Size) -> u64 {
    size.pick(10_000, 100_000)
}

/// Builds the kernel.
#[must_use]
pub fn program(size: Size) -> Program {
    let iters = iterations(size);
    let mut a = Asm::new();
    a.func("search_node");
    a.li(Reg::S0, TT_BASE as i64);
    a.li(Reg::S1, 0xdeeb_57e6); // position hash state
    a.li(Reg::S2, 6364136223846793005);
    a.li(Reg::S3, 1442695040888963407);
    a.li(Reg::T0, 0);
    a.li(Reg::T1, iters as i64);
    let top = a.new_label();
    let cutoff = a.new_label();
    let update = a.new_label();
    let next = a.new_label();
    a.bind(top);
    // Hash the position, probe the transposition table.
    a.mul(Reg::S1, Reg::S1, Reg::S2);
    a.add(Reg::S1, Reg::S1, Reg::S3);
    a.srli(Reg::T2, Reg::S1, 30);
    a.andi(Reg::T2, Reg::T2, (TT_WORDS - 1) as i64);
    a.slli(Reg::T2, Reg::T2, 3);
    a.add(Reg::T2, Reg::S0, Reg::T2);
    a.ld(Reg::T3, Reg::T2, 0);
    // Score evaluation: a short multiply chain.
    a.srli(Reg::T4, Reg::S1, 50);
    a.mul(Reg::T5, Reg::T4, Reg::T4);
    a.add(Reg::T5, Reg::T5, Reg::T3);
    // Alpha-beta style unpredictable cutoffs.
    a.andi(Reg::T6, Reg::T5, 3);
    a.beq(Reg::T6, Reg::ZERO, cutoff);
    a.andi(Reg::T6, Reg::T5, 4);
    a.bne(Reg::T6, Reg::ZERO, update);
    a.add(Reg::A0, Reg::A0, Reg::T5);
    a.j(next);
    a.bind(update);
    a.sd(Reg::T5, Reg::T2, 0);
    a.addi(Reg::A1, Reg::A1, 1);
    a.j(next);
    a.bind(cutoff);
    a.addi(Reg::A2, Reg::A2, 1);
    a.bind(next);
    a.addi(Reg::T0, Reg::T0, 1);
    a.blt(Reg::T0, Reg::T1, top);
    a.halt();
    a.finish().expect("deepsjeng kernel must assemble")
}

/// The [`Workload`] wrapper.
#[must_use]
pub fn workload(size: Size) -> Workload {
    Workload {
        name: "deepsjeng",
        description: "alpha-beta search: integer compute, unpredictable cutoff \
                      branches, L1-evicting transposition-table probes",
        program: program(size),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tea_sim::core::simulate;
    use tea_sim::psv::Event;
    use tea_sim::SimConfig;

    #[test]
    fn mispredicts_and_l1_misses_mix() {
        let s = simulate(&program(Size::Test), SimConfig::default(), &mut []);
        assert!(s.event_insts[Event::FlMb as usize] > iterations(Size::Test) / 20);
        assert!(s.event_insts[Event::StL1 as usize] > iterations(Size::Test) / 20);
        // The table fits the LLC, so once warm most misses stop at the
        // LLC (short runs still pay compulsory LLC misses).
        assert!(s.event_insts[Event::StLlc as usize] < s.event_insts[Event::StL1 as usize]);
    }
}
