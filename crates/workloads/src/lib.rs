//! # tea-workloads
//!
//! Synthetic SPEC-CPU2017-like workloads for the TEA (ISCA 2023)
//! reproduction.
//!
//! The paper evaluates TEA on SPEC CPU2017 with reference inputs —
//! proprietary binaries running ~10^12 cycles on FPGA-accelerated RTL
//! simulation. This crate substitutes kernels, written in the `tea-isa`
//! mini-ISA, whose *bottleneck structure* mirrors the cited benchmarks:
//! the dominant PSV signatures, the commit-state mix and the case-study
//! mechanisms (lbm's exposed streaming loads and store-bandwidth wall,
//! nab's `fsflags`/`frflags` flushes hiding behind `fsqrt.d`). The
//! evaluation's shape — which profiling scheme wins and why — is driven
//! by that structure, not by SPEC semantics; see DESIGN.md.
//!
//! # Example
//!
//! ```
//! use tea_workloads::{all_workloads, Size};
//!
//! let suite = all_workloads(Size::Test);
//! assert_eq!(suite.len(), 18);
//! assert!(suite.iter().any(|w| w.name == "lbm"));
//! ```

#![warn(missing_docs)]

use tea_isa::program::Program;

pub mod bwaves;
pub mod cactu;
pub mod deepsjeng;
pub mod exchange2;
pub mod faulty;
pub mod fotonik3d;
pub mod gcc;
pub mod imagick;
pub mod lbm;
pub mod leela;
pub mod mcf;
pub mod nab;
pub mod omnetpp;
pub mod perlbench;
pub mod povray;
pub mod roms;
pub mod synth;
pub mod x264;
pub mod xalancbmk;
pub mod xz;

/// Workload scale: `Test` for unit tests (hundreds of thousands of
/// cycles), `Ref` for the experiment harnesses (millions of cycles —
/// thousands of samples at the 4 kHz-equivalent interval).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Size {
    /// Small inputs for fast tests.
    Test,
    /// Reference inputs for the paper-reproduction harnesses.
    Ref,
}

impl Size {
    /// Picks an iteration count by size.
    #[must_use]
    pub fn pick(self, test: u64, reference: u64) -> u64 {
        match self {
            Size::Test => test,
            Size::Ref => reference,
        }
    }
}

/// A named benchmark program.
#[derive(Clone, Debug)]
pub struct Workload {
    /// SPEC-style benchmark name, e.g. `"lbm"`.
    pub name: &'static str,
    /// One-line description of the behaviour it models.
    pub description: &'static str,
    /// The assembled program.
    pub program: Program,
}

/// The full 18-benchmark suite used for Figures 5, 7, 8 and 9.
#[must_use]
pub fn all_workloads(size: Size) -> Vec<Workload> {
    vec![
        lbm::workload(size),
        nab::workload(size),
        bwaves::workload(size),
        omnetpp::workload(size),
        fotonik3d::workload(size),
        exchange2::workload(size),
        mcf::workload(size),
        deepsjeng::workload(size),
        leela::workload(size),
        xz::workload(size),
        x264::workload(size),
        gcc::workload(size),
        perlbench::workload(size),
        xalancbmk::workload(size),
        cactu::workload(size),
        roms::workload(size),
        imagick::workload(size),
        povray::workload(size),
    ]
}

/// The four benchmarks of the paper's Figure 6 (top-3 instruction
/// PICS): bwaves, omnetpp, fotonik3d, exchange2.
#[must_use]
pub fn fig6_workloads(size: Size) -> Vec<Workload> {
    vec![
        bwaves::workload(size),
        omnetpp::workload(size),
        fotonik3d::workload(size),
        exchange2::workload(size),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_unique_names() {
        let suite = all_workloads(Size::Test);
        let mut names: Vec<_> = suite.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 18);
    }

    #[test]
    fn all_programs_terminate_functionally() {
        for w in all_workloads(Size::Test) {
            let mut m = tea_isa::Machine::new(&w.program);
            let budget = 60_000_000;
            m.run(budget);
            assert!(
                m.is_halted(),
                "{} did not halt within {budget} instructions",
                w.name
            );
        }
    }
}
