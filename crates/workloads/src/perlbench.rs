//! `perlbench`-like kernel: a bytecode interpreter dispatch loop.
//!
//! Interpreters are dominated by the indirect dispatch jump: the handler
//! address depends on the (data-dependent) opcode, so the BTB
//! mispredicts whenever consecutive opcodes differ — heavy FL-MB with a
//! cache-resident working set.

use tea_isa::asm::Asm;
use tea_isa::program::Program;
use tea_isa::reg::Reg;

use crate::{Size, Workload};

/// Number of distinct opcode handlers.
const HANDLERS: usize = 24;
/// ALU work per handler.
const HANDLER_OPS: usize = 12;

/// Number of bytecode operations executed, by size.
#[must_use]
pub fn iterations(size: Size) -> u64 {
    size.pick(8_000, 80_000)
}

/// Builds the kernel.
#[must_use]
pub fn program(size: Size) -> Program {
    let iters = iterations(size);
    let mut a = Asm::new();
    a.func("run_ops");
    a.li(Reg::S1, 0x9e11_be7c); // bytecode PRNG (models fetched opcodes)
    a.li(Reg::S2, 6364136223846793005);
    a.li(Reg::S3, 1442695040888963407);
    a.li(Reg::T0, 0);
    a.li(Reg::T1, iters as i64);
    let top = a.new_label();
    let dispatch_table: Vec<_> = (0..HANDLERS).map(|_| a.new_label()).collect();
    a.bind(top);
    // Decode the next opcode.
    a.mul(Reg::S1, Reg::S1, Reg::S2);
    a.add(Reg::S1, Reg::S1, Reg::S3);
    a.srli(Reg::T2, Reg::S1, 45);
    a.li(Reg::T3, HANDLERS as i64);
    a.rem(Reg::T2, Reg::T2, Reg::T3);
    // Compute the handler address: table base + op * handler size.
    // The handler bodies are laid out contiguously after the loop, each
    // exactly (HANDLER_OPS + 1) instructions long.
    let handler_bytes = (HANDLER_OPS as i64 + 1) * 4;
    a.li(Reg::T4, 0); // patched below: base of handler 0
    let li_base_index = a.len() - 1;
    a.li(Reg::T6, handler_bytes);
    a.mul(Reg::T5, Reg::T2, Reg::T6);
    a.add(Reg::T5, Reg::T4, Reg::T5);
    a.jalr(Reg::RA, Reg::T5, 0); // the indirect dispatch
    a.addi(Reg::T0, Reg::T0, 1);
    a.blt(Reg::T0, Reg::T1, top);
    a.halt();
    // Handler bodies.
    let handlers_start = a.here();
    for (k, &label) in dispatch_table.iter().enumerate() {
        a.bind(label);
        for i in 0..HANDLER_OPS {
            let r = [Reg::A0, Reg::A1, Reg::A2, Reg::A3][(i + k) % 4];
            a.addi(r, r, (k as i64 % 7) + 1);
        }
        a.jr(Reg::RA);
    }
    let mut p = a.finish().expect("perlbench kernel must assemble");
    // Patch the handler-table base into the placeholder li.
    let mut insts = p.insts().to_vec();
    insts[li_base_index] = tea_isa::Inst::Li {
        rd: Reg::T4,
        imm: handlers_start as i64,
    };
    p = Program::from_parts(
        p.base(),
        insts,
        p.functions().to_vec(),
        p.init_words().to_vec(),
    );
    p
}

/// The [`Workload`] wrapper.
#[must_use]
pub fn workload(size: Size) -> Workload {
    Workload {
        name: "perlbench",
        description: "bytecode interpreter: data-dependent indirect dispatch jumps, \
                      BTB mispredicts, cache-resident",
        program: program(size),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tea_sim::core::simulate;
    use tea_sim::psv::Event;
    use tea_sim::SimConfig;

    #[test]
    fn dispatch_executes_all_ops_and_halts() {
        let p = program(Size::Test);
        let mut m = tea_isa::Machine::new(&p);
        m.run(50_000_000);
        assert!(m.is_halted());
        // Handlers incremented the accumulators.
        let total: u64 = [Reg::A0, Reg::A1, Reg::A2, Reg::A3]
            .iter()
            .map(|&r| m.int_reg(r))
            .sum();
        assert!(total >= iterations(Size::Test) * HANDLER_OPS as u64 / 2);
    }

    #[test]
    fn indirect_dispatch_mispredicts() {
        let s = simulate(&program(Size::Test), SimConfig::default(), &mut []);
        assert!(
            s.event_insts[Event::FlMb as usize] > iterations(Size::Test) / 3,
            "varying opcodes must defeat the BTB: {}",
            s.event_insts[Event::FlMb as usize]
        );
        assert!(
            s.event_insts[Event::StLlc as usize] < 100,
            "perlbench is cache-resident"
        );
    }
}
