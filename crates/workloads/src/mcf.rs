//! `mcf`-like kernel: serialized pointer chasing with LLC misses.
//!
//! SPEC's 505.mcf walks network-simplex arc lists far larger than the
//! LLC; its dependent loads cannot be overlapped, so the Stalled commit
//! state with ST-LLC signatures dominates almost completely.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use tea_isa::asm::Asm;
use tea_isa::program::Program;
use tea_isa::reg::Reg;

use crate::{Size, Workload};

const ARENA_BASE: u64 = 0x4000_0000;
/// One node per cache line, two lines apart to defeat the next-line
/// prefetcher.
const NODE_STRIDE: u64 = 128;

/// Number of arena nodes by size (`Ref`: 8 MiB, 4x the LLC).
#[must_use]
pub fn node_count(size: Size) -> u64 {
    size.pick(24_576, 65_536)
}

/// Number of chase steps by size.
#[must_use]
pub fn iterations(size: Size) -> u64 {
    size.pick(4_000, 25_000)
}

/// Builds the kernel.
#[must_use]
pub fn program(size: Size) -> Program {
    let nodes = node_count(size);
    let iters = iterations(size);
    let mut a = Asm::new();
    a.func("refresh_potential");
    let mut order: Vec<u64> = (1..nodes).collect();
    let mut rng = SmallRng::seed_from_u64(0x0cf + nodes);
    order.shuffle(&mut rng);
    let addr_of = |i: u64| ARENA_BASE + i * NODE_STRIDE;
    let mut cur = 0u64;
    for &next in order.iter().chain(std::iter::once(&0)) {
        a.init_word(addr_of(cur), addr_of(next));
        a.init_word(addr_of(cur) + 8, next & 0xffff);
        cur = next;
    }
    a.li(Reg::S0, ARENA_BASE as i64);
    a.li(Reg::T0, 0);
    a.li(Reg::T1, iters as i64);
    let top = a.new_label();
    let infeasible = a.new_label();
    let next = a.new_label();
    a.bind(top);
    // Arc cost inspection with a data-dependent feasibility test (the
    // simplex pricing conditional), then the dependent hop.
    a.ld(Reg::T2, Reg::S0, 8);
    a.andi(Reg::T3, Reg::T2, 3);
    a.beq(Reg::T3, Reg::ZERO, infeasible);
    a.add(Reg::A0, Reg::A0, Reg::T2);
    a.slli(Reg::T4, Reg::T2, 2);
    a.add(Reg::A1, Reg::A1, Reg::T4);
    a.j(next);
    a.bind(infeasible);
    a.addi(Reg::A2, Reg::A2, 1);
    a.bind(next);
    a.ld(Reg::S0, Reg::S0, 0);
    a.addi(Reg::T0, Reg::T0, 1);
    a.blt(Reg::T0, Reg::T1, top);
    a.halt();
    a.finish().expect("mcf kernel must assemble")
}

/// The [`Workload`] wrapper.
#[must_use]
pub fn workload(size: Size) -> Workload {
    Workload {
        name: "mcf",
        description: "network-simplex pointer chasing over an 8 MiB arena: \
                      serialized LLC misses, Stalled-dominated",
        program: program(size),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tea_sim::core::simulate;
    use tea_sim::psv::{CommitState, Event};
    use tea_sim::SimConfig;

    #[test]
    fn chase_is_stall_dominated_with_llc_misses() {
        let s = simulate(&program(Size::Test), SimConfig::default(), &mut []);
        assert!(
            s.cycles_in(CommitState::Stalled) > s.cycles / 2,
            "stalled {} of {}",
            s.cycles_in(CommitState::Stalled),
            s.cycles
        );
        assert!(s.event_insts[Event::StLlc as usize] > iterations(Size::Test) / 3);
        assert!(s.ipc() < 1.0, "mcf must be memory-bound, ipc {}", s.ipc());
    }
}
