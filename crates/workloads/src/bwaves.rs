//! `bwaves`-like kernel: FP solver whose strided accesses miss cache
//! *and* TLB together.
//!
//! The paper's Figure 6a shows bwaves' top instructions dominated by
//! *combined* events — (ST-L1, ST-TLB) and (ST-LLC, ST-TLB) — because
//! its block-tridiagonal sweeps stride across pages. Optimising it
//! requires improving both cache and TLB utilisation.

use tea_isa::asm::Asm;
use tea_isa::program::Program;
use tea_isa::reg::{FReg, Reg};

use crate::{Size, Workload};

const GRID_BASE: u64 = 0x1000_0000;
/// One page plus three lines per element: every access touches a fresh
/// page and a fresh line.
const STRIDE: u64 = 4096 + 192;

/// Number of iterations by size.
#[must_use]
pub fn iterations(size: Size) -> u64 {
    size.pick(2_500, 30_000)
}

/// Builds the kernel.
#[must_use]
pub fn program(size: Size) -> Program {
    let iters = iterations(size);
    let mut a = Asm::new();
    a.func("mat_times_vec");
    a.li(Reg::S0, GRID_BASE as i64);
    a.li(Reg::T0, 0);
    a.li(Reg::T1, iters as i64);
    a.fli_d(FReg::FS0, 1.0625);
    a.fli_d(FReg::FS1, -0.5);
    let top = a.new_label();
    a.bind(top);
    // Page-striding loads: combined data cache + TLB misses.
    a.fld(FReg::FT0, Reg::S0, 0);
    a.fld(FReg::FT1, Reg::S0, 8);
    a.fld(FReg::FT2, Reg::S0, 64);
    // Block multiply-accumulate.
    a.fmadd_d(FReg::FA0, FReg::FT0, FReg::FS0, FReg::FA0);
    a.fmadd_d(FReg::FA1, FReg::FT1, FReg::FS1, FReg::FA1);
    a.fmul_d(FReg::FT3, FReg::FT0, FReg::FT1);
    a.fmadd_d(FReg::FA2, FReg::FT3, FReg::FS0, FReg::FA2);
    a.fadd_d(FReg::FA3, FReg::FA3, FReg::FT2);
    a.addi(Reg::S0, Reg::S0, STRIDE as i64);
    a.addi(Reg::T0, Reg::T0, 1);
    a.blt(Reg::T0, Reg::T1, top);
    a.halt();
    a.finish().expect("bwaves kernel must assemble")
}

/// The [`Workload`] wrapper.
#[must_use]
pub fn workload(size: Size) -> Workload {
    Workload {
        name: "bwaves",
        description: "block-tridiagonal FP sweeps striding across pages: combined \
                      cache+TLB miss signatures (Figure 6a)",
        program: program(size),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tea_sim::core::simulate;
    use tea_sim::psv::Event;
    use tea_sim::SimConfig;

    #[test]
    fn combined_cache_and_tlb_misses_dominate() {
        let s = simulate(&program(Size::Test), SimConfig::default(), &mut []);
        let n = iterations(Size::Test);
        assert!(
            s.event_insts[Event::StTlb as usize] > n / 2,
            "TLB misses too rare"
        );
        assert!(
            s.event_insts[Event::StL1 as usize] > n,
            "cache misses too rare"
        );
        assert!(s.combined_event_insts > n / 2, "combined events expected");
    }
}
