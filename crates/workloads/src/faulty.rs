//! Fault-injection kernels for exercising the experiment engine's
//! fault tolerance.
//!
//! Real sweep harnesses meet three kinds of bad cell: a program that
//! never terminates (caught by the engine's cycle budget), a program
//! whose control flow escapes the text segment (caught as a structured
//! `IsaError`), and a harness bug that panics (caught by the engine's
//! `catch_unwind` isolation). This module provides the first two as
//! deterministic miniature kernels; panic injection lives in the engine
//! itself (`tea_exp::Fault`), since a panic is a property of the cell
//! body, not of the simulated program.
//!
//! These workloads are deliberately **not** part of
//! [`crate::all_workloads`] — they exist to fail.

use tea_isa::asm::Asm;
use tea_isa::program::Program;
use tea_isa::reg::Reg;

use crate::{Size, Workload};

/// How the kernel misbehaves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultMode {
    /// A well-behaved control kernel that terminates quickly (for
    /// baselines next to the faulty ones).
    Clean,
    /// An infinite loop: commits forever without halting, so only a
    /// cycle budget stops it.
    Diverge,
    /// Jumps through a register holding a wild address, making the pc
    /// escape the text segment (`IsaError::PcEscaped`).
    EscapePc,
}

/// The address the [`FaultMode::EscapePc`] kernel jumps to: far outside
/// any text segment.
pub const WILD_ADDR: u64 = 0xdead_0000;

/// Builds the kernel for `mode`. All three modes share a short warm-up
/// loop so faulty cells look like ordinary cells until they misbehave.
#[must_use]
pub fn program(size: Size, mode: FaultMode) -> Program {
    let iters = size.pick(50, 500);
    let mut a = Asm::new();
    a.func("faulty");
    a.li(Reg::T0, 0);
    a.li(Reg::T1, iters as i64);
    let top = a.new_label();
    a.bind(top);
    a.addi(Reg::A0, Reg::A0, 3);
    a.addi(Reg::T0, Reg::T0, 1);
    a.blt(Reg::T0, Reg::T1, top);
    match mode {
        FaultMode::Clean => {}
        FaultMode::Diverge => {
            // Spin forever, committing every cycle: the engine's cycle
            // budget is the only way out.
            let spin = a.new_label();
            a.bind(spin);
            a.addi(Reg::A1, Reg::A1, 1);
            a.j(spin);
        }
        FaultMode::EscapePc => {
            a.li(Reg::T2, WILD_ADDR as i64);
            a.jr(Reg::T2);
        }
    }
    a.halt();
    a.finish().expect("faulty kernel must assemble")
}

/// The [`Workload`] wrapper (not part of the standard suite).
#[must_use]
pub fn workload(size: Size, mode: FaultMode) -> Workload {
    let (name, description) = match mode {
        FaultMode::Clean => ("faulty-clean", "well-behaved control kernel"),
        FaultMode::Diverge => ("faulty-diverge", "infinite loop; needs a cycle budget"),
        FaultMode::EscapePc => ("faulty-escape", "pc escapes the text segment"),
    };
    Workload {
        name,
        description,
        program: program(size, mode),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_mode_halts() {
        let p = program(Size::Test, FaultMode::Clean);
        let mut m = tea_isa::Machine::new(&p);
        m.run(1_000_000);
        assert!(m.is_halted());
    }

    #[test]
    fn diverge_mode_never_halts() {
        let p = program(Size::Test, FaultMode::Diverge);
        let mut m = tea_isa::Machine::new(&p);
        m.run(1_000_000);
        assert!(!m.is_halted(), "diverging kernel must still be running");
    }

    #[test]
    fn escape_mode_faults_with_context() {
        let p = program(Size::Test, FaultMode::EscapePc);
        let mut m = tea_isa::Machine::new(&p);
        let err = loop {
            match m.try_step() {
                Ok(Some(_)) => {}
                Ok(None) => panic!("kernel must fault, not halt"),
                Err(e) => break e,
            }
        };
        match err {
            tea_isa::IsaError::PcEscaped { pc, .. } => assert_eq!(pc, WILD_ADDR),
            other => panic!("expected PcEscaped, got {other:?}"),
        }
    }
}
