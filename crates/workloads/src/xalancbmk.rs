//! `xalancbmk`-like kernel: XML/XSLT processing modelled as a DOM-tree
//! walk with tag-dependent branching.
//!
//! Nodes are scattered over a multi-megabyte heap (ST-L1/ST-LLC/ST-TLB
//! combinations) and every node's tag drives an unpredictable dispatch
//! branch (FL-MB) — the classic pointer-and-branch profile of the real
//! benchmark.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use tea_isa::asm::Asm;
use tea_isa::program::Program;
use tea_isa::reg::Reg;

use crate::{Size, Workload};

const HEAP_BASE: u64 = 0x6000_0000;
/// One node per 96 bytes (pointer + tag + text length), crossing lines.
const NODE_STRIDE: u64 = 96;

/// Number of DOM nodes by size (`Ref`: 4.5 MiB of nodes).
#[must_use]
pub fn node_count(size: Size) -> u64 {
    size.pick(16_384, 49_152)
}

/// Number of visited nodes by size.
#[must_use]
pub fn iterations(size: Size) -> u64 {
    size.pick(5_000, 40_000)
}

/// Builds the kernel.
#[must_use]
pub fn program(size: Size) -> Program {
    let nodes = node_count(size);
    let iters = iterations(size);
    let mut a = Asm::new();
    a.func("transform_node");
    let mut order: Vec<u64> = (1..nodes).collect();
    let mut rng = SmallRng::seed_from_u64(0xa1a + nodes);
    order.shuffle(&mut rng);
    let addr_of = |i: u64| HEAP_BASE + i * NODE_STRIDE;
    let mut cur = 0u64;
    let mut tag_state = 0x517e_913du64;
    for &next in order.iter().chain(std::iter::once(&0)) {
        tag_state = tag_state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        a.init_word(addr_of(cur), addr_of(next));
        a.init_word(addr_of(cur) + 8, tag_state >> 40); // tag
        a.init_word(addr_of(cur) + 16, tag_state & 0xff); // text length
        cur = next;
    }
    a.li(Reg::S0, HEAP_BASE as i64);
    a.li(Reg::T0, 0);
    a.li(Reg::T1, iters as i64);
    let top = a.new_label();
    let element = a.new_label();
    let text = a.new_label();
    let visited = a.new_label();
    a.bind(top);
    a.ld(Reg::S1, Reg::S0, 0); // next node (dependent chase)
    a.ld(Reg::T2, Reg::S0, 8); // tag
    a.ld(Reg::T3, Reg::S0, 16); // text length
    a.andi(Reg::T4, Reg::T2, 3);
    a.beq(Reg::T4, Reg::ZERO, element);
    a.andi(Reg::T5, Reg::T2, 4);
    a.bne(Reg::T5, Reg::ZERO, text);
    // Attribute node: accumulate the name hash.
    a.add(Reg::A0, Reg::A0, Reg::T2);
    a.j(visited);
    a.bind(element);
    // Element node: descend bookkeeping and output-stack push.
    a.slli(Reg::T6, Reg::T2, 1);
    a.add(Reg::A1, Reg::A1, Reg::T6);
    a.sd(Reg::A1, Reg::S0, 24);
    a.j(visited);
    a.bind(text);
    // Text node: copy-length accounting.
    a.add(Reg::A2, Reg::A2, Reg::T3);
    a.bind(visited);
    a.add(Reg::S0, Reg::S1, Reg::ZERO);
    a.addi(Reg::T0, Reg::T0, 1);
    a.blt(Reg::T0, Reg::T1, top);
    a.halt();
    a.finish().expect("xalancbmk kernel must assemble")
}

/// The [`Workload`] wrapper.
#[must_use]
pub fn workload(size: Size) -> Workload {
    Workload {
        name: "xalancbmk",
        description: "DOM-tree walk over a scattered multi-MiB heap with tag-dependent \
                      dispatch branches",
        program: program(size),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tea_sim::core::simulate;
    use tea_sim::psv::{CommitState, Event};
    use tea_sim::SimConfig;

    #[test]
    fn walk_halts_and_visits_node_kinds() {
        let p = program(Size::Test);
        let mut m = tea_isa::Machine::new(&p);
        m.run(20_000_000);
        assert!(m.is_halted());
        assert!(m.int_reg(Reg::A0) > 0 || m.int_reg(Reg::A1) > 0);
        assert!(m.int_reg(Reg::A2) > 0, "text nodes visited");
    }

    #[test]
    fn cache_tlb_and_branch_events_mix() {
        let s = simulate(&program(Size::Test), SimConfig::default(), &mut []);
        let n = iterations(Size::Test);
        assert!(s.event_insts[Event::StL1 as usize] > n / 2);
        assert!(s.event_insts[Event::StTlb as usize] > 0);
        assert!(s.event_insts[Event::FlMb as usize] > n / 20);
        assert!(s.cycles_in(CommitState::Stalled) > s.cycles / 4);
    }
}
