//! `gcc`-like kernel: a large instruction footprint exercised by a
//! round-robin of many small pass functions.
//!
//! Compilers spread execution across far more code than the 32 KiB L1
//! instruction cache holds, so the front end drains on instruction
//! fetch: DR-L1 signatures (with occasional DR-TLB) distinguish this
//! workload from the data-bound kernels.

use tea_isa::asm::Asm;
use tea_isa::program::Program;
use tea_isa::reg::Reg;

use crate::{Size, Workload};

/// Number of generated pass functions.
const FUNCS: usize = 72;
/// ALU body length per function (total text ≈ FUNCS × (BODY+2) × 4 B ≈
/// 38 KiB, exceeding the 32 KiB L1I).
const BODY: usize = 128;

/// Number of full pass rounds by size. `Ref` is sized so the
/// instruction-granularity profile of the ~9 k static instructions gets
/// enough samples at the default interval (see EXPERIMENTS.md on
/// sampling density).
#[must_use]
pub fn rounds(size: Size) -> u64 {
    size.pick(20, 900)
}

/// Builds the kernel.
#[must_use]
pub fn program(size: Size) -> Program {
    let n = rounds(size);
    let mut a = Asm::new();
    a.func("run_passes");
    a.li(Reg::T0, 0);
    a.li(Reg::T1, n as i64);
    let top = a.new_label();
    let funcs: Vec<_> = (0..FUNCS).map(|_| a.new_label()).collect();
    a.bind(top);
    for &f in &funcs {
        a.jal(Reg::RA, f);
    }
    a.addi(Reg::T0, Reg::T0, 1);
    a.blt(Reg::T0, Reg::T1, top);
    a.halt();
    // The pass bodies: straight-line ALU work with one early-out branch.
    for (k, &f) in funcs.iter().enumerate() {
        a.func(format!("pass_{k}"));
        a.bind(f);
        let skip = a.new_label();
        a.andi(Reg::T2, Reg::T0, 1);
        a.beq(Reg::T2, Reg::ZERO, skip);
        a.addi(Reg::A1, Reg::A1, 1);
        a.bind(skip);
        for i in 0..BODY {
            let r = [Reg::A2, Reg::A3, Reg::A4, Reg::A5][(i + k) % 4];
            a.addi(r, r, 1);
        }
        a.jr(Reg::RA);
    }
    a.finish().expect("gcc kernel must assemble")
}

/// The [`Workload`] wrapper.
#[must_use]
pub fn workload(size: Size) -> Workload {
    Workload {
        name: "gcc",
        description: "72 pass functions totalling ~38 KiB of text: front-end-bound, \
                      DR-L1 drain signatures",
        program: program(size),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tea_sim::core::simulate;
    use tea_sim::psv::{CommitState, Event};
    use tea_sim::SimConfig;

    #[test]
    fn text_exceeds_l1i() {
        let p = program(Size::Test);
        assert!(p.len() * 4 > 32 * 1024, "text is {} B", p.len() * 4);
        assert!(p.functions().len() > FUNCS);
    }

    #[test]
    fn front_end_drains_on_icache_misses() {
        let s = simulate(&program(Size::Test), SimConfig::default(), &mut []);
        assert!(
            s.event_insts[Event::DrL1 as usize] > 100 * rounds(Size::Test),
            "DR-L1 events: {}",
            s.event_insts[Event::DrL1 as usize]
        );
        assert!(s.cycles_in(CommitState::Drained) > s.cycles / 10);
    }
}
