//! `roms`-like kernel: ocean modelling — multiple streamed FP arrays
//! with a page-crossing vertical stride and result stores.
//!
//! The vertical (k-direction) sweeps of the real model stride across
//! pages, mixing ST-TLB into the streaming ST-L1 profile, and the
//! output stores add DR-SQ pressure phases.

use tea_isa::asm::Asm;
use tea_isa::program::Program;
use tea_isa::reg::{FReg, Reg};

use crate::{Size, Workload};

const FIELD_U: u64 = 0x1000_0000;
const FIELD_V: u64 = 0x2000_0140;
const FIELD_W: u64 = 0x3000_0280;
const FIELD_OUT: u64 = 0x8000_0000;
/// Vertical stride: half a page plus a line, so consecutive points hit
/// fresh lines and frequently fresh pages.
const STRIDE: u64 = 2048 + 64;

/// Number of grid points by size.
#[must_use]
pub fn iterations(size: Size) -> u64 {
    size.pick(4_000, 40_000)
}

/// Builds the kernel.
#[must_use]
pub fn program(size: Size) -> Program {
    let iters = iterations(size);
    let mut a = Asm::new();
    a.func("vert_advect");
    a.li(Reg::S0, FIELD_U as i64);
    a.li(Reg::S1, FIELD_V as i64);
    a.li(Reg::S2, FIELD_W as i64);
    a.li(Reg::S3, FIELD_OUT as i64);
    a.li(Reg::T0, 0);
    a.li(Reg::T1, iters as i64);
    a.fli_d(FReg::FS0, 0.375);
    let top = a.new_label();
    a.bind(top);
    a.fld(FReg::FT0, Reg::S0, 0);
    a.fld(FReg::FT1, Reg::S1, 0);
    a.fld(FReg::FT2, Reg::S2, 0);
    // Advection update.
    a.fsub_d(FReg::FT3, FReg::FT0, FReg::FT1);
    a.fmadd_d(FReg::FT4, FReg::FT3, FReg::FS0, FReg::FT2);
    a.fmul_d(FReg::FT5, FReg::FT4, FReg::FS0);
    a.fsd(FReg::FT4, Reg::S3, 0);
    a.fsd(FReg::FT5, Reg::S3, 8);
    a.addi(Reg::S0, Reg::S0, STRIDE as i64);
    a.addi(Reg::S1, Reg::S1, STRIDE as i64);
    a.addi(Reg::S2, Reg::S2, STRIDE as i64);
    a.addi(Reg::S3, Reg::S3, 16);
    a.addi(Reg::T0, Reg::T0, 1);
    a.blt(Reg::T0, Reg::T1, top);
    a.halt();
    a.finish().expect("roms kernel must assemble")
}

/// The [`Workload`] wrapper.
#[must_use]
pub fn workload(size: Size) -> Workload {
    Workload {
        name: "roms",
        description: "vertical ocean-model sweeps: streamed FP arrays with \
                      page-crossing strides (ST-L1+ST-TLB) and output stores",
        program: program(size),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tea_sim::core::simulate;
    use tea_sim::psv::Event;
    use tea_sim::SimConfig;

    #[test]
    fn page_crossing_streams_mix_cache_and_tlb() {
        let s = simulate(&program(Size::Test), SimConfig::default(), &mut []);
        let n = iterations(Size::Test);
        assert!(s.event_insts[Event::StL1 as usize] > n);
        assert!(
            s.event_insts[Event::StTlb as usize] > n / 4,
            "vertical strides cross pages"
        );
        assert!(s.combined_event_insts > n / 8);
    }
}
