//! `x264`-like kernel: sum-of-absolute-differences over two frames with
//! a reconstructed output stream.
//!
//! Video encoding streams reference and current blocks (sequential,
//! prefetcher-friendly) and writes the reconstruction — integer compute
//! with store traffic, mostly Base components with a streaming ST-L1
//! tail.

use tea_isa::asm::Asm;
use tea_isa::program::Program;
use tea_isa::reg::Reg;

use crate::{Size, Workload};

const REF_BASE: u64 = 0x1000_0000;
const CUR_BASE: u64 = 0x2000_0000;
const REC_BASE: u64 = 0x3000_0000;

/// Number of 8-byte pixels processed by size.
#[must_use]
pub fn iterations(size: Size) -> u64 {
    size.pick(12_000, 120_000)
}

/// Builds the kernel.
#[must_use]
pub fn program(size: Size) -> Program {
    let iters = iterations(size);
    let mut a = Asm::new();
    a.func("sad_block");
    a.li(Reg::S0, REF_BASE as i64);
    a.li(Reg::S1, CUR_BASE as i64);
    a.li(Reg::S2, REC_BASE as i64);
    a.li(Reg::T0, 0);
    a.li(Reg::T1, iters as i64);
    let top = a.new_label();
    a.bind(top);
    a.ld(Reg::T2, Reg::S0, 0);
    a.ld(Reg::T3, Reg::S1, 0);
    // |ref - cur| via the shift trick: (x ^ (x >> 63)) - (x >> 63).
    a.sub(Reg::T4, Reg::T2, Reg::T3);
    a.srli(Reg::T5, Reg::T4, 63);
    a.sub(Reg::T6, Reg::ZERO, Reg::T5);
    a.xor(Reg::T4, Reg::T4, Reg::T6);
    a.add(Reg::T4, Reg::T4, Reg::T5);
    a.add(Reg::A0, Reg::A0, Reg::T4); // SAD accumulator
                                      // Reconstruction: average-ish blend, stored to the output frame.
    a.add(Reg::T6, Reg::T2, Reg::T3);
    a.srli(Reg::T6, Reg::T6, 1);
    a.sd(Reg::T6, Reg::S2, 0);
    a.addi(Reg::S0, Reg::S0, 8);
    a.addi(Reg::S1, Reg::S1, 8);
    a.addi(Reg::S2, Reg::S2, 8);
    a.addi(Reg::T0, Reg::T0, 1);
    a.blt(Reg::T0, Reg::T1, top);
    a.halt();
    a.finish().expect("x264 kernel must assemble")
}

/// The [`Workload`] wrapper.
#[must_use]
pub fn workload(size: Size) -> Workload {
    Workload {
        name: "x264",
        description: "SAD + reconstruction over streamed frames: integer compute, \
                      sequential loads and store traffic",
        program: program(size),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tea_sim::core::simulate;
    use tea_sim::psv::Event;
    use tea_sim::SimConfig;

    #[test]
    fn streaming_with_store_traffic() {
        let s = simulate(&program(Size::Test), SimConfig::default(), &mut []);
        assert!(s.ipc() > 1.0, "x264 is compute-heavy, ipc {}", s.ipc());
        assert!(s.event_insts[Event::StL1 as usize] > 0);
        assert!(
            s.hier.dram_lines > iterations(Size::Test) / 10,
            "streams reach DRAM"
        );
    }
}
