//! `imagick`-like kernel: image resize/sharpen over an L1-resident tile
//! with per-pixel normalisation divides.
//!
//! ImageMagick's convolution loops are compute-bound; the per-pixel
//! divide serialises on the unpipelined FP divider, making that unit
//! the bottleneck (a Base-dominated stall profile, like nab's sqrt but
//! without the flushes).

use tea_isa::asm::Asm;
use tea_isa::program::Program;
use tea_isa::reg::{FReg, Reg};

use crate::{Size, Workload};

const TILE_BASE: u64 = 0x0050_0000;
/// Tile ring: 16 KiB, L1-resident.
const TILE_BYTES: u64 = 16 * 1024;

/// Number of pixels processed by size.
#[must_use]
pub fn iterations(size: Size) -> u64 {
    size.pick(6_000, 60_000)
}

/// Builds the kernel.
#[must_use]
pub fn program(size: Size) -> Program {
    let iters = iterations(size);
    let mut a = Asm::new();
    a.func("resize_filter");
    a.li(Reg::S0, TILE_BASE as i64);
    a.li(Reg::S1, 0);
    a.li(Reg::T0, 0);
    a.li(Reg::T1, iters as i64);
    a.fli_d(FReg::FS0, 0.25);
    a.fli_d(FReg::FS1, 1.0);
    let top = a.new_label();
    a.bind(top);
    a.add(Reg::T2, Reg::S0, Reg::S1);
    // 3-tap filter over the tile ring.
    a.fld(FReg::FT0, Reg::T2, 0);
    a.fld(FReg::FT1, Reg::T2, 8);
    a.fld(FReg::FT2, Reg::T2, 16);
    a.fmadd_d(FReg::FT3, FReg::FT0, FReg::FS0, FReg::FT1);
    a.fmadd_d(FReg::FT3, FReg::FT2, FReg::FS0, FReg::FT3);
    // Normalisation: the unpipelined divide that dominates.
    a.fadd_d(FReg::FT4, FReg::FT3, FReg::FS1);
    a.fdiv_d(FReg::FT5, FReg::FT3, FReg::FT4);
    a.fmadd_d(FReg::FA0, FReg::FT5, FReg::FS1, FReg::FA0);
    a.fsd(FReg::FT5, Reg::T2, 24);
    // Advance the ring.
    a.addi(Reg::S1, Reg::S1, 32);
    a.li(Reg::T5, (TILE_BYTES - 32) as i64);
    a.slt(Reg::T6, Reg::T5, Reg::S1);
    let no_wrap = a.new_label();
    a.beq(Reg::T6, Reg::ZERO, no_wrap);
    a.li(Reg::S1, 0);
    a.bind(no_wrap);
    a.addi(Reg::T0, Reg::T0, 1);
    a.blt(Reg::T0, Reg::T1, top);
    a.halt();
    a.finish().expect("imagick kernel must assemble")
}

/// The [`Workload`] wrapper.
#[must_use]
pub fn workload(size: Size) -> Workload {
    Workload {
        name: "imagick",
        description: "convolution + per-pixel normalisation: the unpipelined FP divider \
                      is the bottleneck; cache-resident tile",
        program: program(size),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tea_sim::core::simulate;
    use tea_sim::psv::{CommitState, Event};
    use tea_sim::SimConfig;

    #[test]
    fn divider_serialises_the_loop() {
        let s = simulate(&program(Size::Test), SimConfig::default(), &mut []);
        let div_lat = SimConfig::default().lat.fp_div;
        assert!(
            s.cycles > iterations(Size::Test) * div_lat,
            "one unpipelined divide per iteration bounds the loop: {} cycles",
            s.cycles
        );
        // Divider stalls carry no PSV events: a Base-dominated profile.
        assert!(s.cycles_in(CommitState::Stalled) > s.cycles / 3);
        assert!(s.event_insts[Event::StLlc as usize] < 100);
    }
}
