//! `xz`-like kernel: LZMA match finding — dictionary probes across a
//! large window with data-dependent control flow.
//!
//! The 8 MiB dictionary misses the LLC and spans more pages than the L1
//! TLB covers, while the match/no-match branches depend on data:
//! a blend of ST-LLC/ST-TLB signatures and FL-MB.

use tea_isa::asm::Asm;
use tea_isa::program::Program;
use tea_isa::reg::Reg;

use crate::{Size, Workload};

const DICT_BASE: u64 = 0x5000_0000;
const OUT_BASE: u64 = 0x7000_0000;
/// Dictionary window in 8-byte words (`Ref`: 8 MiB).
#[must_use]
pub fn dict_words(size: Size) -> u64 {
    size.pick(262_144, 1_048_576)
}

/// Number of match probes by size.
#[must_use]
pub fn iterations(size: Size) -> u64 {
    size.pick(5_000, 50_000)
}

/// Builds the kernel.
#[must_use]
pub fn program(size: Size) -> Program {
    let iters = iterations(size);
    let words = dict_words(size);
    let mut a = Asm::new();
    a.func("find_match");
    a.li(Reg::S0, DICT_BASE as i64);
    a.li(Reg::S1, 0x7a2023); // position hash
    a.li(Reg::S2, 6364136223846793005);
    a.li(Reg::S3, 1442695040888963407);
    a.li(Reg::S4, OUT_BASE as i64);
    a.li(Reg::T0, 0);
    a.li(Reg::T1, iters as i64);
    let top = a.new_label();
    let literal = a.new_label();
    let next = a.new_label();
    a.bind(top);
    // Hash chain probe into the big window.
    a.mul(Reg::S1, Reg::S1, Reg::S2);
    a.add(Reg::S1, Reg::S1, Reg::S3);
    a.srli(Reg::T2, Reg::S1, 24);
    a.andi(Reg::T2, Reg::T2, (words - 1) as i64);
    a.slli(Reg::T2, Reg::T2, 3);
    a.add(Reg::T2, Reg::S0, Reg::T2);
    a.ld(Reg::T3, Reg::T2, 0); // candidate (LLC/TLB-missing)
                               // The window is sparse (zero-filled) in this synthetic input, so
                               // mix the position into the candidate to model real byte content;
                               // T3 still becomes ready only when the load completes.
    a.xor(Reg::T3, Reg::T3, Reg::T2);
    a.srli(Reg::T3, Reg::T3, 3);
    // Overlapping match copy: the output slot is addressed through the
    // just-loaded candidate (address resolves *late*), while the
    // read-back of the recent output below uses an immediately-ready
    // address. When they alias — as overlapping LZ77 copies do — the
    // early load reads stale data and the core flushes: the paper's
    // FL-MO memory-ordering violation.
    a.andi(Reg::T6, Reg::T3, 0x38);
    a.add(Reg::T6, Reg::S4, Reg::T6);
    a.sd(Reg::T3, Reg::T6, 0);
    a.ld(Reg::A2, Reg::S4, 0x18); // recent output byte, may alias
    a.add(Reg::A3, Reg::A3, Reg::A2);
    // Compare with the "current" bytes (derived from the hash).
    a.srli(Reg::T4, Reg::S1, 40);
    a.andi(Reg::T4, Reg::T4, 7);
    a.andi(Reg::T5, Reg::T3, 7);
    a.bne(Reg::T4, Reg::T5, literal);
    // Match: extend and emit a length-distance pair.
    a.add(Reg::T6, Reg::T4, Reg::T5);
    a.sd(Reg::T6, Reg::S4, 64);
    a.add(Reg::A0, Reg::A0, Reg::T6);
    a.j(next);
    a.bind(literal);
    a.addi(Reg::A1, Reg::A1, 1);
    a.bind(next);
    a.addi(Reg::T0, Reg::T0, 1);
    a.blt(Reg::T0, Reg::T1, top);
    a.halt();
    a.finish().expect("xz kernel must assemble")
}

/// The [`Workload`] wrapper.
#[must_use]
pub fn workload(size: Size) -> Workload {
    Workload {
        name: "xz",
        description: "LZMA match finding: random probes into an 8 MiB window \
                      (LLC+TLB misses) with data-dependent match branches",
        program: program(size),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tea_sim::core::simulate;
    use tea_sim::psv::Event;
    use tea_sim::SimConfig;

    #[test]
    fn window_probes_miss_llc_and_tlb() {
        let s = simulate(&program(Size::Test), SimConfig::default(), &mut []);
        let n = iterations(Size::Test);
        assert!(s.event_insts[Event::StLlc as usize] > n / 4);
        assert!(s.event_insts[Event::StTlb as usize] > n / 4);
        assert!(s.event_insts[Event::FlMb as usize] > n / 50);
    }

    #[test]
    fn overlapping_copies_cause_memory_ordering_violations() {
        let s = simulate(&program(Size::Test), SimConfig::default(), &mut []);
        assert!(
            s.mo_violations > iterations(Size::Test) / 50,
            "aliasing copy-back must trigger FL-MO: {}",
            s.mo_violations
        );
        assert!(s.event_insts[Event::FlMo as usize] > 0);
    }
}
