//! `leela`-like kernel: Monte-Carlo tree search playouts — random board
//! probes with moderate branching.
//!
//! The board state array is mid-sized (256 KiB): random probes evict the
//! L1 but hit the LLC, producing a balanced Base / FL-MB / ST-L1 mix.

use tea_isa::asm::Asm;
use tea_isa::program::Program;
use tea_isa::reg::Reg;

use crate::{Size, Workload};

const BOARD_BASE: u64 = 0x0060_0000;
/// Board state: 256 KiB.
const BOARD_WORDS: u64 = 32_768;

/// Number of playout steps by size.
#[must_use]
pub fn iterations(size: Size) -> u64 {
    size.pick(10_000, 100_000)
}

/// Builds the kernel.
#[must_use]
pub fn program(size: Size) -> Program {
    let iters = iterations(size);
    let mut a = Asm::new();
    a.func("playout");
    a.li(Reg::S0, BOARD_BASE as i64);
    a.li(Reg::S1, 0x1ee1a); // playout RNG
    a.li(Reg::S2, 6364136223846793005);
    a.li(Reg::S3, 1442695040888963407);
    a.li(Reg::T0, 0);
    a.li(Reg::T1, iters as i64);
    let top = a.new_label();
    let occupied = a.new_label();
    let next = a.new_label();
    a.bind(top);
    a.mul(Reg::S1, Reg::S1, Reg::S2);
    a.add(Reg::S1, Reg::S1, Reg::S3);
    a.srli(Reg::T2, Reg::S1, 35);
    a.andi(Reg::T2, Reg::T2, (BOARD_WORDS - 1) as i64);
    a.slli(Reg::T2, Reg::T2, 3);
    a.add(Reg::T2, Reg::S0, Reg::T2);
    a.ld(Reg::T3, Reg::T2, 0); // probe the point (L1-evicting)
    a.bne(Reg::T3, Reg::ZERO, occupied);
    // Play a stone: liberties-style neighbour arithmetic.
    a.srli(Reg::T4, Reg::S1, 20);
    a.andi(Reg::T4, Reg::T4, 3);
    a.addi(Reg::T4, Reg::T4, 1);
    a.sd(Reg::T4, Reg::T2, 0);
    a.add(Reg::A0, Reg::A0, Reg::T4);
    a.j(next);
    a.bind(occupied);
    // Capture check: clear with probability 1/4.
    a.andi(Reg::T5, Reg::S1, 3);
    a.bne(Reg::T5, Reg::ZERO, next);
    a.sd(Reg::ZERO, Reg::T2, 0);
    a.addi(Reg::A1, Reg::A1, 1);
    a.bind(next);
    a.addi(Reg::T0, Reg::T0, 1);
    a.blt(Reg::T0, Reg::T1, top);
    a.halt();
    a.finish().expect("leela kernel must assemble")
}

/// The [`Workload`] wrapper.
#[must_use]
pub fn workload(size: Size) -> Workload {
    Workload {
        name: "leela",
        description: "Monte-Carlo playouts over a 256 KiB board: L1-evicting random \
                      probes with moderate mispredicts",
        program: program(size),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tea_sim::core::simulate;
    use tea_sim::psv::Event;
    use tea_sim::SimConfig;

    #[test]
    fn balanced_event_mix() {
        let s = simulate(&program(Size::Test), SimConfig::default(), &mut []);
        assert!(s.event_insts[Event::StL1 as usize] > iterations(Size::Test) / 10);
        assert!(s.event_insts[Event::FlMb as usize] > iterations(Size::Test) / 30);
        assert!(s.ipc() > 0.3, "leela is not purely memory-bound");
    }
}
