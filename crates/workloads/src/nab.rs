//! `nab`-like kernel: the paper's second case study (Figure 12).
//!
//! SPEC's 544.nab computes molecular dynamics distances: a
//! sum-of-squares followed by `fsqrt.d`. On RISC-V the compiler brackets
//! the preceding `flt.d` comparison with `frflags`/`fsflags` to stay
//! IEEE 754-compliant (no non-excepting compare exists), and on this
//! architecture those CSR accesses *always flush the pipeline*. The
//! flushes prevent the core from fetching ahead, so the unpipelined
//! square root issues too late for its latency to be hidden — the subtle
//! chain of causation TEA's accurate PICS expose.
//!
//! The fixes the paper applies are compiler flags:
//! [`MathMode::FiniteMath`] removes the flag save/restore (speedup
//! 1.96× in the paper); [`MathMode::FastMath`] additionally replaces the
//! IEEE square root with a fast reciprocal-sqrt style approximation
//! (2.45×).

use tea_isa::asm::Asm;
use tea_isa::program::Program;
use tea_isa::reg::{FReg, Reg};

use crate::{Size, Workload};

/// Coordinate array base (small: L1-resident, as in nab's hot loop).
const COORD_BASE: u64 = 0x0040_0000;
/// Bytes of coordinate data cycled through (one L1-resident ring).
const COORD_RING: u64 = 8 * 1024;

/// Compilation mode of the kernel (the paper's case-study knob).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MathMode {
    /// IEEE 754-compliant: `frflags`/`flt.d`/`fsflags` bracket every
    /// comparison, each CSR access flushing the pipeline.
    Ieee,
    /// `-ffinite-math-only`: the comparison needs no flag handling; the
    /// square root remains.
    FiniteMath,
    /// `-ffast-math`: no flag handling, and the square root is replaced
    /// by a pipelined polynomial approximation.
    FastMath,
}

impl MathMode {
    /// All three modes, slowest first.
    pub const ALL: [MathMode; 3] = [MathMode::Ieee, MathMode::FiniteMath, MathMode::FastMath];

    /// Compiler-flag-style name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            MathMode::Ieee => "ieee",
            MathMode::FiniteMath => "finite-math",
            MathMode::FastMath => "fast-math",
        }
    }
}

/// Number of iterations by size.
#[must_use]
pub fn iterations(size: Size) -> u64 {
    size.pick(3_000, 30_000)
}

/// Builds the nab kernel in the given math mode.
#[must_use]
pub fn program_with_mode(size: Size, mode: MathMode) -> Program {
    let iters = iterations(size);
    let mut a = Asm::new();
    a.func("dist_energy");
    a.li(Reg::S0, COORD_BASE as i64);
    a.li(Reg::S1, 0); // ring offset
    a.li(Reg::T0, 0);
    a.li(Reg::T1, iters as i64);
    a.fli_d(FReg::FS0, 0.75); // reference coordinates
    a.fli_d(FReg::FS1, 12.5); // cutoff distance squared
    a.fli_d(FReg::FS2, 0.5); // approximation coefficients
    a.fli_d(FReg::FS3, 1.0);
    let top = a.new_label();
    a.bind(top);
    // Load the atom's coordinates (L1-resident ring).
    a.add(Reg::T2, Reg::S0, Reg::S1);
    a.fld(FReg::FT0, Reg::T2, 0);
    a.fld(FReg::FT1, Reg::T2, 8);
    a.fld(FReg::FT2, Reg::T2, 16);
    // r^2 = dx^2 + dy^2 + dz^2.
    a.fsub_d(FReg::FT3, FReg::FT0, FReg::FS0);
    a.fmul_d(FReg::FT4, FReg::FT3, FReg::FT3);
    a.fsub_d(FReg::FT5, FReg::FT1, FReg::FS0);
    a.fmadd_d(FReg::FT4, FReg::FT5, FReg::FT5, FReg::FT4);
    a.fsub_d(FReg::FT6, FReg::FT2, FReg::FS0);
    a.fmadd_d(FReg::FT4, FReg::FT6, FReg::FT6, FReg::FT4);
    // Cutoff test. Under IEEE 754, flt.d must not raise on NaN, so the
    // compiler saves and restores the FP exception flags around it —
    // and both CSR accesses flush the pipeline on this architecture.
    match mode {
        MathMode::Ieee => {
            a.frflags(Reg::T3);
            a.flt_d(Reg::T4, FReg::FT4, FReg::FS1);
            a.fsflags(Reg::ZERO, Reg::T3);
        }
        MathMode::FiniteMath | MathMode::FastMath => {
            a.flt_d(Reg::T4, FReg::FT4, FReg::FS1);
        }
    }
    // r = sqrt(r^2): the performance-critical instruction.
    match mode {
        MathMode::Ieee | MathMode::FiniteMath => {
            a.fsqrt_d(FReg::FT7, FReg::FT4);
        }
        MathMode::FastMath => {
            // -ffast-math codegen: a reciprocal-estimate Newton step —
            // one (unpipelined, but shorter-latency) divide plus a
            // pipelined correction instead of the full IEEE sqrt.
            a.fmadd_d(FReg::FT8, FReg::FT4, FReg::FS2, FReg::FS3);
            a.fdiv_d(FReg::FT7, FReg::FT4, FReg::FT8);
            a.fmadd_d(FReg::FT7, FReg::FT7, FReg::FS2, FReg::FS3);
        }
    }
    // Energy contribution using r.
    a.fmadd_d(FReg::FA0, FReg::FT7, FReg::FS2, FReg::FA0);
    a.fadd_d(FReg::FA1, FReg::FA1, FReg::FT7);
    // Advance the ring.
    a.addi(Reg::S1, Reg::S1, 24);
    a.li(Reg::T5, (COORD_RING - 24) as i64);
    a.slt(Reg::T6, Reg::T5, Reg::S1);
    let no_wrap = a.new_label();
    a.beq(Reg::T6, Reg::ZERO, no_wrap);
    a.li(Reg::S1, 0);
    a.bind(no_wrap);
    a.addi(Reg::T0, Reg::T0, 1);
    a.blt(Reg::T0, Reg::T1, top);
    a.halt();
    a.finish().expect("nab kernel must assemble")
}

/// The IEEE-compliant build (the paper's starting point).
#[must_use]
pub fn program(size: Size) -> Program {
    program_with_mode(size, MathMode::Ieee)
}

/// The [`Workload`] wrapper for the suite.
#[must_use]
pub fn workload(size: Size) -> Workload {
    Workload {
        name: "nab",
        description: "molecular-dynamics distances: fsqrt.d issued too late because \
                      frflags/fsflags flush the pipeline (Figure 12 case study)",
        program: program(size),
    }
}

/// Address of the `fsqrt.d` instruction (IEEE / finite-math builds).
#[must_use]
pub fn fsqrt_addr(size: Size, mode: MathMode) -> Option<u64> {
    let p = program_with_mode(size, mode);
    let addr = p
        .iter()
        .find(|(_, i)| i.mnemonic() == "fsqrt.d")
        .map(|(a, _)| a);
    addr
}

#[cfg(test)]
mod tests {
    use super::*;
    use tea_sim::core::simulate;
    use tea_sim::psv::Event;
    use tea_sim::SimConfig;

    #[test]
    fn kernel_halts_in_every_mode() {
        for mode in MathMode::ALL {
            let p = program_with_mode(Size::Test, mode);
            let mut m = tea_isa::Machine::new(&p);
            m.run(5_000_000);
            assert!(m.is_halted(), "{} did not halt", mode.name());
        }
    }

    #[test]
    fn ieee_mode_flushes_twice_per_iteration() {
        let s = simulate(&program(Size::Test), SimConfig::default(), &mut []);
        assert_eq!(s.commit_flushes, 2 * iterations(Size::Test));
        assert_eq!(
            s.event_insts[Event::FlEx as usize],
            2 * iterations(Size::Test)
        );
    }

    #[test]
    fn finite_math_speedup_matches_paper_shape() {
        let ieee = simulate(&program(Size::Test), SimConfig::default(), &mut []);
        let finite = simulate(
            &program_with_mode(Size::Test, MathMode::FiniteMath),
            SimConfig::default(),
            &mut [],
        );
        let fast = simulate(
            &program_with_mode(Size::Test, MathMode::FastMath),
            SimConfig::default(),
            &mut [],
        );
        let s_finite = ieee.cycles as f64 / finite.cycles as f64;
        let s_fast = ieee.cycles as f64 / fast.cycles as f64;
        // The paper reports 1.96x and 2.45x; shape: both large, fast-math
        // larger.
        assert!(s_finite > 1.4, "finite-math speedup {s_finite:.2}");
        assert!(
            s_fast > s_finite,
            "fast-math {s_fast:.2} must beat finite-math {s_finite:.2}"
        );
    }

    #[test]
    fn fsqrt_address_resolves() {
        assert!(fsqrt_addr(Size::Test, MathMode::Ieee).is_some());
        assert!(fsqrt_addr(Size::Test, MathMode::FastMath).is_none());
    }
}
