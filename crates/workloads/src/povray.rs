//! `povray`-like kernel: ray-sphere intersection tests — FP compute
//! with square roots behind data-dependent hit/miss branches.
//!
//! Ray tracing mixes discriminant arithmetic, an unpredictable
//! hit-or-miss branch, and a square root only on hits: FL-MB plus
//! FP-unit stalls, cache-resident.

use tea_isa::asm::Asm;
use tea_isa::program::Program;
use tea_isa::reg::{FReg, Reg};

use crate::{Size, Workload};

const SCENE_BASE: u64 = 0x0070_0000;
/// Scene objects: 8 KiB ring (L1-resident).
const SCENE_BYTES: u64 = 8 * 1024;

/// Number of rays traced by size.
#[must_use]
pub fn iterations(size: Size) -> u64 {
    size.pick(5_000, 50_000)
}

/// Builds the kernel.
#[must_use]
pub fn program(size: Size) -> Program {
    let iters = iterations(size);
    let mut a = Asm::new();
    a.func("intersect_sphere");
    a.li(Reg::S0, SCENE_BASE as i64);
    a.li(Reg::S1, 0);
    a.li(Reg::S4, 0x9a7_2a7e); // ray PRNG
    a.li(Reg::S2, 6364136223846793005);
    a.li(Reg::S3, 1442695040888963407);
    a.li(Reg::T0, 0);
    a.li(Reg::T1, iters as i64);
    a.fli_d(FReg::FS0, 0.001953125); // 1/512
    a.fli_d(FReg::FS1, 1.0);
    a.fli_d(FReg::FS2, 0.5); // squared radius: hit iff dir^2 >= r^2
    a.fli_d(FReg::FS3, 0.0);
    let top = a.new_label();
    let miss = a.new_label();
    let next = a.new_label();
    a.bind(top);
    // Ray direction from the PRNG.
    a.mul(Reg::S4, Reg::S4, Reg::S2);
    a.add(Reg::S4, Reg::S4, Reg::S3);
    a.srli(Reg::T2, Reg::S4, 55);
    a.fcvt_d_l(FReg::FT0, Reg::T2);
    a.fmul_d(FReg::FT0, FReg::FT0, FReg::FS0); // in [0, 1)
                                               // Sphere parameters from the scene ring.
    a.add(Reg::T3, Reg::S0, Reg::S1);
    a.fld(FReg::FT1, Reg::T3, 0);
    a.fld(FReg::FT2, Reg::T3, 8);
    // Discriminant dir^2 + obj - r^2 (sign decides the hit; obj is the
    // per-object term from the scene ring).
    a.fmadd_d(FReg::FT3, FReg::FT0, FReg::FT0, FReg::FT1);
    a.fadd_d(FReg::FT3, FReg::FT3, FReg::FT2);
    a.fsub_d(FReg::FT4, FReg::FT3, FReg::FS2);
    a.flt_d(Reg::T4, FReg::FT4, FReg::FS3);
    a.bne(Reg::T4, Reg::ZERO, miss);
    // Hit: the distance needs a square root (dir^2 + obj >= 0).
    a.fsqrt_d(FReg::FT5, FReg::FT3);
    a.fmadd_d(FReg::FA0, FReg::FT5, FReg::FS1, FReg::FA0);
    a.j(next);
    a.bind(miss);
    a.fadd_d(FReg::FA1, FReg::FA1, FReg::FS1);
    a.bind(next);
    // Advance the scene ring.
    a.addi(Reg::S1, Reg::S1, 16);
    a.li(Reg::T5, (SCENE_BYTES - 16) as i64);
    a.slt(Reg::T6, Reg::T5, Reg::S1);
    let no_wrap = a.new_label();
    a.beq(Reg::T6, Reg::ZERO, no_wrap);
    a.li(Reg::S1, 0);
    a.bind(no_wrap);
    a.addi(Reg::T0, Reg::T0, 1);
    a.blt(Reg::T0, Reg::T1, top);
    a.halt();
    a.finish().expect("povray kernel must assemble")
}

/// The [`Workload`] wrapper.
#[must_use]
pub fn workload(size: Size) -> Workload {
    Workload {
        name: "povray",
        description: "ray-sphere intersections: discriminant FP compute, unpredictable \
                      hit branches, square roots on hits",
        program: program(size),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tea_sim::core::simulate;
    use tea_sim::psv::Event;
    use tea_sim::SimConfig;

    #[test]
    fn hits_and_misses_both_occur() {
        let p = program(Size::Test);
        let mut m = tea_isa::Machine::new(&p);
        m.run(30_000_000);
        assert!(m.is_halted());
        assert!(m.fp_reg(FReg::FA0) > 0.0, "some rays hit");
        assert!(m.fp_reg(FReg::FA1) > 0.0, "some rays miss");
    }

    #[test]
    fn branchy_fp_profile() {
        let s = simulate(&program(Size::Test), SimConfig::default(), &mut []);
        assert!(s.event_insts[Event::FlMb as usize] > iterations(Size::Test) / 40);
        assert!(
            s.event_insts[Event::StLlc as usize] < 100,
            "scene is cache-resident"
        );
    }
}
