//! Simulator-throughput measurement: the `tea-cli bench` backend.
//!
//! Every figure and table of the reproduction is bottlenecked by the
//! same hot path — `Core::try_run_for` driving the attribution
//! observers — so this module measures exactly that, in two
//! configurations per workload:
//!
//! * **sim** — the bare simulator with no observers attached (upper
//!   bound: timing model only);
//! * **profiled** — the standard experiment configuration: the golden
//!   reference plus all five sampling schemes, i.e. the load every
//!   harness cell pays.
//!
//! The headline metrics are simulated cycles per wall-clock second and
//! sample-attribution throughput (samples resolved per second). Since
//! the capture/replay subsystem landed, each workload is additionally
//! timed in a third configuration:
//!
//! * **replay** — the profiled configuration fed from a pre-captured
//!   [`CapturedTrace`] instead of the live interpreter, i.e. what every
//!   warm-cache cell of an experiment matrix pays;
//!
//! and the report carries a whole-suite **matrix** measurement
//! ([`measure_matrix`]): one multi-seed experiment matrix (several
//! cells per workload) run through `tea_exp::Engine` with the trace
//! cache off, then against a warm caller-owned cache
//! (`Engine::run_with_cache`), so the interpret-vs-replay win shows up
//! as end-to-end wall clock. Results are written to
//! `BENCH_sim_throughput.json` at the workspace root in a stable schema
//! (`tea-bench-throughput/v1`) so the release-to-release trajectory is
//! machine-trackable; see [`render_artifact`].

use std::sync::Arc;
use std::time::Instant;

use tea_core::golden::GoldenReference;
use tea_core::observers::ProfiledObservers;
use tea_exp::json::Json;
use tea_exp::{Engine, Matrix};
use tea_isa::CapturedTrace;
use tea_sim::core::Core;
use tea_sim::SimConfig;
use tea_workloads::Workload;

/// Measured throughput of one workload.
#[derive(Clone, Debug)]
pub struct WorkloadThroughput {
    /// Workload name.
    pub name: String,
    /// Simulated cycles of one run.
    pub cycles: u64,
    /// Retired instructions of one run.
    pub instructions: u64,
    /// Samples attributed across all schemes in the profiled run.
    pub samples: u64,
    /// Cycles the profiled run actually ticked through the pipeline
    /// (total minus fast-forwarded), from
    /// [`tea_sim::CycleBreakdown`].
    pub active_cycles: u64,
    /// Cycles the profiled run skipped via stall fast-forward.
    pub skipped_cycles: u64,
    /// Best wall time of the bare simulation (seconds).
    pub sim_wall: f64,
    /// Best wall time with golden + all schemes attached (seconds).
    pub profiled_wall: f64,
    /// Best wall time of the same profiled configuration with the
    /// flight-recorder sampler ([`tea_obs::series::Sampler`]) running at
    /// its default interval — what a suite run with `--series-out` pays.
    pub sampled_wall: f64,
    /// Wall time of one trace capture (the cost a matrix pays once per
    /// workload before replay starts paying off).
    pub capture_wall: f64,
    /// Best wall time of decoding every compressed block of the
    /// captured trace into reconstructed instructions — the pure codec
    /// share of the replay path, isolated from timing simulation.
    pub decode_wall: f64,
    /// Best wall time of the profiled configuration replaying the
    /// captured trace instead of interpreting live.
    pub replay_wall: f64,
    /// Best wall time with only the golden reference attached — the
    /// cost of publishing a shared golden, which a matrix pays once per
    /// `(program, config)` pair.
    pub golden_wall: f64,
    /// Resident heap bytes of the compressed captured trace (what a
    /// trace-cache entry for this workload costs).
    pub trace_resident_bytes: u64,
    /// Bytes the same stream occupied in the uncompressed
    /// structure-of-arrays layout (21 B per captured instruction).
    pub trace_uncompressed_bytes: u64,
}

impl WorkloadThroughput {
    /// Simulated cycles per second, bare simulator.
    #[must_use]
    pub fn sim_cycles_per_second(&self) -> f64 {
        rate(self.cycles as f64, self.sim_wall)
    }

    /// Simulated cycles per second under the full profiler set.
    #[must_use]
    pub fn profiled_cycles_per_second(&self) -> f64 {
        rate(self.cycles as f64, self.profiled_wall)
    }

    /// Samples attributed per second in the profiled configuration.
    #[must_use]
    pub fn samples_per_second(&self) -> f64 {
        rate(self.samples as f64, self.profiled_wall)
    }

    /// Simulated cycles per second, profiled with the metrics sampler
    /// running.
    #[must_use]
    pub fn sampled_cycles_per_second(&self) -> f64 {
        rate(self.cycles as f64, self.sampled_wall)
    }

    /// Wall-clock inflation from the sampler: `sampled_wall /
    /// profiled_wall`. 1.0 means free; 1.02 means 2% slower with the
    /// flight recorder on.
    #[must_use]
    pub fn sampler_overhead(&self) -> f64 {
        if self.profiled_wall > 0.0 {
            self.sampled_wall / self.profiled_wall
        } else {
            0.0
        }
    }

    /// Simulated cycles per second, profiled and replaying the
    /// captured trace.
    #[must_use]
    pub fn replay_cycles_per_second(&self) -> f64 {
        rate(self.cycles as f64, self.replay_wall)
    }
}

fn rate(n: f64, secs: f64) -> f64 {
    if secs > 0.0 {
        n / secs
    } else {
        0.0
    }
}

/// `num / den` as a JSON value, guarded against degenerate
/// denominators: a zero, negative, or non-finite denominator — and any
/// non-finite quotient — yields [`Json::Null`] instead of a `NaN`/`inf`
/// smuggled through [`Json::Num`]. Keeps every ratio field in
/// `BENCH_sim_throughput.json` either a finite number or `null`.
fn json_ratio(num: f64, den: f64) -> Json {
    if !(den.is_finite() && den > 0.0) {
        return Json::Null;
    }
    let r = num / den;
    if r.is_finite() {
        Json::Num(r)
    } else {
        Json::Null
    }
}

/// A full suite measurement.
#[derive(Clone, Debug)]
pub struct ThroughputReport {
    /// Workload size the suite ran at (`"test"` or `"ref"`).
    pub size: String,
    /// Sampling interval of the profiled configuration.
    pub interval: u64,
    /// Timed repetitions per configuration (best-of is reported).
    pub iterations: u32,
    /// Per-workload measurements.
    pub workloads: Vec<WorkloadThroughput>,
    /// Whole-suite matrix wall clock, trace cache off vs on.
    pub matrix: MatrixThroughput,
}

/// End-to-end wall clock of one multi-seed experiment matrix run
/// through the engine twice: interpreting every cell live
/// (`trace_cache(false)`) and against a warm caller-owned cache
/// (`Engine::run_with_cache` after an untimed warming run), where
/// every cell replays its workload's shared capture and all golden
/// references are already published.
#[derive(Clone, Debug)]
pub struct MatrixThroughput {
    /// Cells per workload (the seed-axis width).
    pub cells_per_workload: u64,
    /// Total cells in the matrix.
    pub cells: u64,
    /// Best wall time with the trace cache off (seconds).
    pub interpret_wall: f64,
    /// Best wall time against the warm cache (seconds).
    pub replay_wall: f64,
}

impl MatrixThroughput {
    /// Whole-suite speedup of the warm trace cache over per-cell live
    /// interpretation. Returns 0.0 when the replay wall time is zero or
    /// non-finite (a degraded measurement, e.g. a sub-resolution
    /// timer); the JSON artifact reports such a measurement as `null`
    /// rather than a number (see [`MatrixThroughput::to_json`]).
    #[must_use]
    pub fn warm_speedup(&self) -> f64 {
        if self.replay_wall.is_finite() && self.replay_wall > 0.0 {
            let r = self.interpret_wall / self.replay_wall;
            if r.is_finite() {
                return r;
            }
        }
        0.0
    }

    /// The measurement as the artifact's `matrix` object.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("cells_per_workload", Json::UInt(self.cells_per_workload)),
            ("cells", Json::UInt(self.cells)),
            ("interpret_wall_seconds", Json::Num(self.interpret_wall)),
            ("replay_wall_seconds", Json::Num(self.replay_wall)),
            (
                "warm_speedup",
                json_ratio(self.interpret_wall, self.replay_wall),
            ),
        ])
    }
}

impl ThroughputReport {
    /// Total simulated cycles across the suite (one run each).
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.workloads.iter().map(|w| w.cycles).sum()
    }

    /// Total samples attributed across the suite.
    #[must_use]
    pub fn total_samples(&self) -> u64 {
        self.workloads.iter().map(|w| w.samples).sum()
    }

    /// Total cycles the profiled runs actually ticked (the complement
    /// of [`ThroughputReport::total_skipped_cycles`]).
    #[must_use]
    pub fn total_active_cycles(&self) -> u64 {
        self.workloads.iter().map(|w| w.active_cycles).sum()
    }

    /// Total cycles the profiled runs fast-forwarded past.
    #[must_use]
    pub fn total_skipped_cycles(&self) -> u64 {
        self.workloads.iter().map(|w| w.skipped_cycles).sum()
    }

    /// Aggregate bare-simulator cycles per second (total cycles over
    /// total best wall time).
    #[must_use]
    pub fn sim_cycles_per_second(&self) -> f64 {
        let wall: f64 = self.workloads.iter().map(|w| w.sim_wall).sum();
        rate(self.total_cycles() as f64, wall)
    }

    /// Aggregate profiled cycles per second.
    #[must_use]
    pub fn profiled_cycles_per_second(&self) -> f64 {
        let wall: f64 = self.workloads.iter().map(|w| w.profiled_wall).sum();
        rate(self.total_cycles() as f64, wall)
    }

    /// Aggregate samples attributed per second.
    #[must_use]
    pub fn samples_per_second(&self) -> f64 {
        let wall: f64 = self.workloads.iter().map(|w| w.profiled_wall).sum();
        rate(self.total_samples() as f64, wall)
    }

    /// Aggregate profiled cycles per second over the replay path.
    #[must_use]
    pub fn replay_cycles_per_second(&self) -> f64 {
        let wall: f64 = self.workloads.iter().map(|w| w.replay_wall).sum();
        rate(self.total_cycles() as f64, wall)
    }

    /// Aggregate profiled cycles per second with the sampler running.
    #[must_use]
    pub fn sampled_cycles_per_second(&self) -> f64 {
        let wall: f64 = self.workloads.iter().map(|w| w.sampled_wall).sum();
        rate(self.total_cycles() as f64, wall)
    }

    /// Suite-wide sampler overhead: total sampled wall over total
    /// profiled wall (0.0 when nothing was measured).
    #[must_use]
    pub fn sampler_overhead(&self) -> f64 {
        let profiled: f64 = self.workloads.iter().map(|w| w.profiled_wall).sum();
        let sampled: f64 = self.workloads.iter().map(|w| w.sampled_wall).sum();
        if profiled > 0.0 {
            sampled / profiled
        } else {
            0.0
        }
    }

    /// Total resident bytes of all compressed captured traces — the
    /// trace-cache footprint of running the whole suite warm.
    #[must_use]
    pub fn total_trace_resident_bytes(&self) -> u64 {
        self.workloads.iter().map(|w| w.trace_resident_bytes).sum()
    }

    /// Total bytes the same traces occupied uncompressed.
    #[must_use]
    pub fn total_trace_uncompressed_bytes(&self) -> u64 {
        self.workloads
            .iter()
            .map(|w| w.trace_uncompressed_bytes)
            .sum()
    }

    /// The aggregate measurement as a JSON object (the shape of the
    /// artifact's `before` / `after` fields).
    #[must_use]
    pub fn summary_json(&self) -> Json {
        Json::obj(vec![
            ("cycles", Json::UInt(self.total_cycles())),
            ("samples", Json::UInt(self.total_samples())),
            // Engine-level cycle breakdown of the profiled runs: how
            // much of the simulated time was actually ticked vs skipped
            // by stall fast-forward. Diagnostic only — identical
            // simulation results regardless of the split.
            ("active_cycles", Json::UInt(self.total_active_cycles())),
            ("skipped_cycles", Json::UInt(self.total_skipped_cycles())),
            (
                "sim_cycles_per_second",
                Json::Num(self.sim_cycles_per_second()),
            ),
            (
                "profiled_cycles_per_second",
                Json::Num(self.profiled_cycles_per_second()),
            ),
            (
                "replay_cycles_per_second",
                Json::Num(self.replay_cycles_per_second()),
            ),
            ("samples_per_second", Json::Num(self.samples_per_second())),
            (
                "sampled_cycles_per_second",
                Json::Num(self.sampled_cycles_per_second()),
            ),
            (
                "sampler_overhead",
                json_ratio(
                    self.workloads.iter().map(|w| w.sampled_wall).sum(),
                    self.workloads.iter().map(|w| w.profiled_wall).sum(),
                ),
            ),
            (
                "matrix_warm_speedup",
                json_ratio(self.matrix.interpret_wall, self.matrix.replay_wall),
            ),
            (
                "trace_resident_bytes",
                Json::UInt(self.total_trace_resident_bytes()),
            ),
            (
                "trace_compression",
                json_ratio(
                    self.total_trace_uncompressed_bytes() as f64,
                    self.total_trace_resident_bytes() as f64,
                ),
            ),
        ])
    }

    /// The per-workload rows as a JSON array.
    #[must_use]
    pub fn workloads_json(&self) -> Json {
        Json::Arr(
            self.workloads
                .iter()
                .map(|w| {
                    Json::obj(vec![
                        ("name", Json::Str(w.name.clone())),
                        ("cycles", Json::UInt(w.cycles)),
                        ("instructions", Json::UInt(w.instructions)),
                        ("samples", Json::UInt(w.samples)),
                        ("active_cycles", Json::UInt(w.active_cycles)),
                        ("skipped_cycles", Json::UInt(w.skipped_cycles)),
                        (
                            "sim_cycles_per_second",
                            Json::Num(w.sim_cycles_per_second()),
                        ),
                        (
                            "profiled_cycles_per_second",
                            Json::Num(w.profiled_cycles_per_second()),
                        ),
                        (
                            "replay_cycles_per_second",
                            Json::Num(w.replay_cycles_per_second()),
                        ),
                        // Per-phase wall times (best of the timed
                        // repetitions): where one workload's matrix
                        // cell actually spends its time.
                        ("sim_wall_seconds", Json::Num(w.sim_wall)),
                        ("profiled_wall_seconds", Json::Num(w.profiled_wall)),
                        ("sampled_wall_seconds", Json::Num(w.sampled_wall)),
                        (
                            "sampler_overhead",
                            json_ratio(w.sampled_wall, w.profiled_wall),
                        ),
                        ("capture_wall_seconds", Json::Num(w.capture_wall)),
                        ("block_decode_wall_seconds", Json::Num(w.decode_wall)),
                        ("replay_wall_seconds", Json::Num(w.replay_wall)),
                        ("golden_wall_seconds", Json::Num(w.golden_wall)),
                        ("samples_per_second", Json::Num(w.samples_per_second())),
                        ("trace_resident_bytes", Json::UInt(w.trace_resident_bytes)),
                        (
                            "trace_uncompressed_bytes",
                            Json::UInt(w.trace_uncompressed_bytes),
                        ),
                    ])
                })
                .collect(),
        )
    }
}

/// Runs `w` once under the standard profiled observer set
/// ([`tea_core::observers::ProfiledObservers`], statically dispatched
/// through `Core::run_with`), returning `(cycles, samples)`. This is
/// the exact workload one `profiled` cell of the throughput report
/// times; the criterion bench wraps it so the same code path can be
/// measured under `cargo bench`.
#[must_use]
pub fn profiled_run(w: &Workload, interval: u64, seed: u64) -> (u64, u64) {
    let mut obs = ProfiledObservers::new(interval, seed);
    let mut core = Core::new(&w.program, SimConfig::default());
    let stats = core.run_with(&mut obs);
    (stats.cycles, obs.samples())
}

/// [`profiled_run`] over the replay path: the same observer set, the
/// same timing model, but the instruction stream comes from `trace`
/// instead of the live interpreter — what a warm-trace-cache matrix
/// cell executes.
#[must_use]
pub fn profiled_replay_run(
    program: &tea_isa::program::Program,
    trace: &Arc<CapturedTrace>,
    interval: u64,
    seed: u64,
) -> (u64, u64) {
    let mut obs = ProfiledObservers::new(interval, seed);
    let mut core = Core::with_trace(program, Arc::clone(trace), SimConfig::default());
    let stats = core.run_with(&mut obs);
    (stats.cycles, obs.samples())
}

/// Measures one workload: `iters` timed runs of each configuration,
/// reporting the fastest (wall-clock noise shrinks the minimum, not the
/// mean). `cfg` is the core configuration every phase runs under (the
/// CLI maps `--no-fast-forward` onto it).
#[must_use]
pub fn measure_workload(
    w: &Workload,
    interval: u64,
    seed: u64,
    iters: u32,
    cfg: &SimConfig,
) -> WorkloadThroughput {
    let iters = iters.max(1);
    let mut cycles = 0;
    let mut instructions = 0;
    let mut sim_wall = f64::INFINITY;
    for _ in 0..iters {
        let mut core = Core::new(&w.program, cfg.clone());
        let t0 = Instant::now();
        let stats = core.run(&mut []);
        sim_wall = sim_wall.min(t0.elapsed().as_secs_f64());
        cycles = stats.cycles;
        instructions = stats.retired;
    }
    let mut samples = 0;
    let mut profiled_wall = f64::INFINITY;
    let mut active_cycles = 0;
    let mut skipped_cycles = 0;
    for _ in 0..iters {
        let mut obs = ProfiledObservers::new(interval, seed);
        let mut core = Core::new(&w.program, cfg.clone());
        let t0 = Instant::now();
        core.run_with(&mut obs);
        profiled_wall = profiled_wall.min(t0.elapsed().as_secs_f64());
        samples = obs.samples();
        let breakdown = core.cycle_breakdown();
        active_cycles = breakdown.active_cycles;
        skipped_cycles = breakdown.skipped_cycles;
    }
    // Same profiled configuration, but with the flight-recorder
    // sampler alive for the whole loop (one thread, default interval)
    // — the deployment shape of a suite run with `--series-out`.
    let mut sampled_wall = f64::INFINITY;
    {
        let sampler = tea_obs::series::Sampler::start(tea_obs::series::SamplerConfig::default());
        for _ in 0..iters {
            let mut obs = ProfiledObservers::new(interval, seed);
            let mut core = Core::new(&w.program, cfg.clone());
            let t0 = Instant::now();
            core.run_with(&mut obs);
            sampled_wall = sampled_wall.min(t0.elapsed().as_secs_f64());
        }
        drop(sampler.stop());
    }
    let mut golden_wall = f64::INFINITY;
    for _ in 0..iters {
        let mut golden = GoldenReference::new();
        let mut core = Core::new(&w.program, cfg.clone());
        let t0 = Instant::now();
        core.run_with(&mut golden);
        golden_wall = golden_wall.min(t0.elapsed().as_secs_f64());
    }
    let t0 = Instant::now();
    let trace =
        Arc::new(CapturedTrace::capture_default(&w.program).expect("benchmark workloads halt"));
    let capture_wall = t0.elapsed().as_secs_f64();
    // Pure block-decode sweep: every compressed block reconstructed
    // into a reused buffer, no timing model attached. This is the codec
    // share every warm replay cell pays on top of simulation.
    let mut decode_wall = f64::INFINITY;
    let mut buf = Vec::new();
    for _ in 0..iters {
        let t0 = Instant::now();
        let mut decoded = 0u64;
        for block in 0..trace.num_blocks() {
            trace
                .decode_block_into(&w.program, block, &mut buf)
                .expect("freshly captured trace decodes");
            decoded += buf.len() as u64;
        }
        decode_wall = decode_wall.min(t0.elapsed().as_secs_f64());
        assert_eq!(decoded, trace.len(), "decode sweep covers the stream");
    }
    let mut replay_wall = f64::INFINITY;
    for _ in 0..iters {
        let mut obs = ProfiledObservers::new(interval, seed);
        let mut core = Core::with_trace(&w.program, Arc::clone(&trace), cfg.clone());
        let t0 = Instant::now();
        core.run_with(&mut obs);
        replay_wall = replay_wall.min(t0.elapsed().as_secs_f64());
    }
    WorkloadThroughput {
        name: w.name.to_string(),
        cycles,
        instructions,
        samples,
        active_cycles,
        skipped_cycles,
        sim_wall,
        profiled_wall,
        sampled_wall,
        capture_wall,
        decode_wall,
        replay_wall,
        golden_wall,
        trace_resident_bytes: trace.resident_bytes() as u64,
        trace_uncompressed_bytes: trace.uncompressed_bytes() as u64,
    }
}

/// Seeds of the whole-suite matrix measurement: four cells per
/// workload, the smallest matrix where capture cost must amortize.
pub const MATRIX_SEEDS: [u64; 4] = [11, 29, 42, 97];

/// Measures one experiment matrix (`workloads` × [`MATRIX_SEEDS`], the
/// full scheme set and golden reference on every cell) end to end
/// through a serial [`Engine`]: once interpreting every cell live
/// (`trace_cache(false)`) and once against a **warm** caller-owned
/// [`tea_exp::TraceCache`] — an untimed warming run captures every
/// trace and publishes every golden reference, then the timed runs
/// replay throughout (`Engine::run_with_cache`). Serial, so the
/// comparison measures the replay path rather than scheduling.
#[must_use]
pub fn measure_matrix(
    workloads: &[Workload],
    interval: u64,
    iters: u32,
    cfg: &SimConfig,
) -> MatrixThroughput {
    let cells = Matrix::new()
        .workloads(workloads.to_vec())
        .configs(vec![("default", cfg.clone())])
        .intervals(&[interval])
        .seeds(&MATRIX_SEEDS)
        .cells();
    let engine = Engine::serial().quiet().trace_cache(false);
    let mut interpret_wall = f64::INFINITY;
    for _ in 0..iters.max(1) {
        let t0 = Instant::now();
        let run = engine.run("bench-matrix", cells.clone());
        interpret_wall = interpret_wall.min(t0.elapsed().as_secs_f64());
        assert!(run.all_ok(), "benchmark matrix cells must complete");
    }
    let engine = Engine::serial().quiet();
    let cache = tea_exp::TraceCache::new();
    // Warming run (untimed): captures every workload's trace and
    // publishes every (program, config) golden reference.
    assert!(engine
        .run_with_cache("bench-matrix", cells.clone(), &cache)
        .all_ok());
    let mut replay_wall = f64::INFINITY;
    for _ in 0..iters.max(1) {
        let t0 = Instant::now();
        let run = engine.run_with_cache("bench-matrix", cells.clone(), &cache);
        replay_wall = replay_wall.min(t0.elapsed().as_secs_f64());
        assert!(run.all_ok(), "benchmark matrix cells must complete");
    }
    MatrixThroughput {
        cells_per_workload: MATRIX_SEEDS.len() as u64,
        cells: cells.len() as u64,
        interpret_wall,
        replay_wall,
    }
}

/// Measures a workload set at `interval`, `iters` repetitions each.
#[must_use]
pub fn measure_suite(
    workloads: &[Workload],
    size: &str,
    interval: u64,
    iters: u32,
    cfg: &SimConfig,
) -> ThroughputReport {
    ThroughputReport {
        size: size.to_string(),
        interval,
        iterations: iters.max(1),
        workloads: workloads
            .iter()
            .map(|w| measure_workload(w, interval, crate::HARNESS_SEED, iters, cfg))
            .collect(),
        matrix: measure_matrix(workloads, interval, iters, cfg),
    }
}

/// Schema identifier of the throughput artifact.
pub const THROUGHPUT_SCHEMA: &str = "tea-bench-throughput/v1";

/// Builds the `BENCH_sim_throughput.json` document from the current
/// measurement plus an optional preserved baseline (`before`). When no
/// baseline exists yet, the current measurement doubles as the
/// baseline so the schema is stable from the first run.
#[must_use]
pub fn render_artifact(report: &ThroughputReport, before: Option<Json>) -> Json {
    let after = report.summary_json();
    let before = before.unwrap_or_else(|| after.clone());
    let ratio = |key: &str| {
        // A missing, zero, or (from a hand-edited or corrupted
        // baseline) non-finite field yields `null`, never NaN/inf.
        let b = before.get(key).and_then(Json::as_f64).unwrap_or(0.0);
        let a = after.get(key).and_then(Json::as_f64).unwrap_or(0.0);
        json_ratio(a, b)
    };
    let speedup = Json::obj(vec![
        ("sim_cycles_per_second", ratio("sim_cycles_per_second")),
        (
            "profiled_cycles_per_second",
            ratio("profiled_cycles_per_second"),
        ),
        (
            "replay_cycles_per_second",
            ratio("replay_cycles_per_second"),
        ),
        ("samples_per_second", ratio("samples_per_second")),
    ]);
    Json::obj(vec![
        ("schema", Json::Str(THROUGHPUT_SCHEMA.to_string())),
        (
            "suite",
            Json::obj(vec![
                ("size", Json::Str(report.size.clone())),
                ("interval", Json::UInt(report.interval)),
                ("iterations", Json::UInt(u64::from(report.iterations))),
                ("workloads", Json::UInt(report.workloads.len() as u64)),
            ]),
        ),
        ("before", before),
        ("after", after),
        ("speedup", speedup),
        ("matrix", report.matrix.to_json()),
        ("per_workload", report.workloads_json()),
    ])
}

/// Extracts the preserved baseline (`before` object) from an existing
/// artifact, if `text` parses as one with a matching schema.
#[must_use]
pub fn existing_baseline(text: &str) -> Option<Json> {
    let doc = tea_exp::json::parse(text).ok()?;
    if doc.get("schema")?.as_str()? != THROUGHPUT_SCHEMA {
        return None;
    }
    doc.get("before").cloned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tea_workloads::{all_workloads, Size};

    fn tiny_report() -> ThroughputReport {
        let w: Vec<Workload> = all_workloads(Size::Test)
            .into_iter()
            .filter(|w| w.name == "lbm")
            .collect();
        measure_suite(&w, "test", 512, 1, &SimConfig::default())
    }

    #[test]
    fn per_workload_rows_carry_finite_phase_walls() {
        let r = tiny_report();
        let doc = render_artifact(&r, None);
        let Json::Arr(rows) = doc.get("per_workload").unwrap() else {
            panic!("per_workload must be an array");
        };
        for key in [
            "sim_wall_seconds",
            "profiled_wall_seconds",
            "sampled_wall_seconds",
            "capture_wall_seconds",
            "block_decode_wall_seconds",
            "replay_wall_seconds",
            "golden_wall_seconds",
        ] {
            let v = rows[0]
                .get(key)
                .and_then(Json::as_f64)
                .unwrap_or_else(|| panic!("{key} present and numeric"));
            assert!(v.is_finite() && v >= 0.0, "{key} = {v}");
        }
    }

    #[test]
    fn report_rates_are_positive_and_artifact_is_valid_json() {
        let r = tiny_report();
        assert!(r.total_cycles() > 0);
        assert!(r.total_samples() > 0);
        assert!(r.sim_cycles_per_second() > 0.0);
        assert!(r.profiled_cycles_per_second() > 0.0);
        assert!(r.profiled_cycles_per_second() <= r.sim_cycles_per_second() * 2.0);
        let doc = render_artifact(&r, None);
        let text = doc.render_pretty();
        tea_exp::json::validate(&text).expect("artifact is well-formed JSON");
        let parsed = tea_exp::json::parse(&text).unwrap();
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some(THROUGHPUT_SCHEMA)
        );
        // No baseline: before == after, speedup 1.0.
        let s = parsed.get("speedup").unwrap();
        let v = s
            .get("profiled_cycles_per_second")
            .and_then(Json::as_f64)
            .unwrap();
        assert!((v - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampler_overhead_columns_are_present_and_sane() {
        let r = tiny_report();
        let w = &r.workloads[0];
        assert!(w.sampled_wall.is_finite() && w.sampled_wall > 0.0);
        assert!(w.sampler_overhead() > 0.0);
        assert!(r.sampled_cycles_per_second() > 0.0);
        assert!(r.sampler_overhead() > 0.0);
        let doc = render_artifact(&r, None);
        let after = doc.get("after").unwrap();
        assert!(after
            .get("sampled_cycles_per_second")
            .and_then(Json::as_f64)
            .is_some_and(|v| v > 0.0));
        let overhead = after
            .get("sampler_overhead")
            .and_then(Json::as_f64)
            .expect("suite sampler_overhead present and numeric");
        // Wall-clock noise on a tiny workload swamps the real cost;
        // just pin the ratio to a sane band rather than the 2% budget
        // the ref-size suite is held to.
        assert!((0.2..=5.0).contains(&overhead), "overhead {overhead}");
        let Json::Arr(rows) = doc.get("per_workload").unwrap() else {
            panic!("per_workload must be an array");
        };
        assert!(rows[0]
            .get("sampler_overhead")
            .and_then(Json::as_f64)
            .is_some());
    }

    #[test]
    fn degenerate_denominators_emit_null_not_nan() {
        // A zero or sub-resolution replay wall must not smuggle
        // NaN/inf into the artifact through Json::Num.
        let m = MatrixThroughput {
            cells_per_workload: 4,
            cells: 0,
            interpret_wall: 1.5,
            replay_wall: 0.0,
        };
        assert_eq!(m.warm_speedup(), 0.0);
        let doc = m.to_json();
        assert_eq!(doc.get("warm_speedup"), Some(&Json::Null));

        // Both walls zero (nothing measured): still null, not 0/0 NaN.
        let z = MatrixThroughput {
            interpret_wall: 0.0,
            ..m
        };
        assert_eq!(z.warm_speedup(), 0.0);
        assert_eq!(z.to_json().get("warm_speedup"), Some(&Json::Null));

        assert_eq!(json_ratio(1.0, 0.0), Json::Null);
        assert_eq!(json_ratio(0.0, 0.0), Json::Null);
        assert_eq!(json_ratio(1.0, f64::NAN), Json::Null);
        assert_eq!(json_ratio(f64::NAN, 1.0), Json::Null);
        assert_eq!(json_ratio(1.0, -2.0), Json::Null);
        assert_eq!(json_ratio(3.0, 2.0), Json::Num(1.5));
    }

    #[test]
    fn corrupt_baseline_fields_yield_null_speedups() {
        let r = tiny_report();
        // A baseline with zero, missing and NaN rate fields: every
        // affected speedup must come out null, and the rendered text
        // must stay valid JSON with no NaN/inf anywhere.
        let bad = Json::obj(vec![
            ("cycles", Json::UInt(0)),
            ("sim_cycles_per_second", Json::Num(0.0)),
            ("profiled_cycles_per_second", Json::Num(f64::NAN)),
            // replay_cycles_per_second absent entirely.
            ("samples_per_second", Json::Null),
        ]);
        let doc = render_artifact(&r, Some(bad));
        let s = doc.get("speedup").unwrap();
        for key in [
            "sim_cycles_per_second",
            "profiled_cycles_per_second",
            "replay_cycles_per_second",
            "samples_per_second",
        ] {
            assert_eq!(s.get(key), Some(&Json::Null), "{key} must be null");
        }
        let text = doc.render_pretty();
        tea_exp::json::validate(&text).expect("artifact stays well-formed");
        assert!(!text.contains("NaN") && !text.contains("inf"), "{text}");
    }

    #[test]
    fn artifact_reports_trace_compression() {
        let r = tiny_report();
        assert!(r.total_trace_resident_bytes() > 0);
        assert!(
            r.total_trace_uncompressed_bytes() >= 3 * r.total_trace_resident_bytes(),
            "suite trace compression below 3x: {} -> {}",
            r.total_trace_uncompressed_bytes(),
            r.total_trace_resident_bytes()
        );
        let doc = render_artifact(&r, None);
        let after = doc.get("after").unwrap();
        assert!(after.get("trace_resident_bytes").is_some());
        let c = after
            .get("trace_compression")
            .and_then(Json::as_f64)
            .expect("compression ratio present and numeric");
        assert!(c >= 3.0, "compression ratio {c}");
        let Json::Arr(rows) = doc.get("per_workload").unwrap() else {
            panic!("per_workload must be an array");
        };
        assert!(rows[0].get("trace_resident_bytes").is_some());
        assert!(rows[0].get("trace_uncompressed_bytes").is_some());
    }

    #[test]
    fn baseline_is_preserved_across_reruns() {
        let r = tiny_report();
        let first = render_artifact(&r, None).render_pretty();
        let baseline = existing_baseline(&first).expect("baseline extractable");
        let doc = render_artifact(&r, Some(baseline.clone()));
        assert_eq!(doc.get("before"), Some(&baseline));
        // Garbage or schema-mismatched text yields no baseline.
        assert!(existing_baseline("not json").is_none());
        assert!(existing_baseline("{\"schema\": \"other/v9\"}").is_none());
    }
}
