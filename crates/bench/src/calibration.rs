//! Latency-calibration harness: measures per-opcode latency and
//! initiation interval against the pinned functional-unit tables.
//!
//! The replay fast path reuses execution latencies captured by the
//! functional model, so a silent drift in [`LatencyConfig`] — or in the
//! issue/wakeup logic that realises it — would skew every attribution
//! experiment without failing a single correctness test. This harness
//! closes that gap: for each functional unit it assembles a dependent
//! chain inside a fixed loop body, runs it for `ITERS` and `2*ITERS`
//! trips, and recovers the per-op latency as `(cycles_long -
//! cycles_short) / (ITERS * STEPS)`. Differencing two trip counts of
//! the *same static code* cancels pipeline fill, cold icache misses,
//! predictor warm-up, and halt drain exactly, so in the deterministic
//! simulator the recovered latency is an integer and is compared for
//! *equality* — any drift fails the run.
//!
//! Unpipelined units (integer divide, FP divide, FP square root) are
//! additionally probed with *independent* chains: consecutive ops with
//! no data dependency still serialise on the busy unit, so the
//! initiation interval must equal the latency. Pipelined units accept
//! one op per cycle and are pinned at interval ≤ 1.
//!
//! [`LatencyConfig`]: tea_sim::config::LatencyConfig

use tea_exp::json::Json;
use tea_isa::{Asm, FReg, Program, Reg};
use tea_sim::core::simulate;
use tea_sim::trace::NullObserver;
use tea_sim::SimConfig;

/// Schema identifier stamped into the JSON artifact.
pub const CALIBRATION_SCHEMA: &str = "tea-bench-calibration/v1";

/// Chain steps unrolled inside the loop body.
const STEPS: usize = 32;

/// Loop iterations for the short run; the long run doubles this. Must
/// comfortably exceed the branch predictor's history length: the loop
/// branch indexes a fresh gshare counter every trip until the global
/// history saturates with taken bits, so both runs spend the same first
/// ~14 trips mispredicting and then predict cleanly — keeping squash
/// counts identical and cancelling their cost in the differencing.
const ITERS: i64 = 32;

/// What a measurement probed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Probe {
    /// Dependent-chain latency: each op consumes the previous result.
    Latency,
    /// Independent-chain initiation interval: ops share no registers,
    /// so only structural (functional-unit) hazards space them out.
    Interval,
}

impl Probe {
    fn as_str(self) -> &'static str {
        match self {
            Probe::Latency => "latency",
            Probe::Interval => "interval",
        }
    }
}

/// How a measurement is judged against its expectation.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Pin {
    /// Must equal the pinned value exactly.
    Exact(f64),
    /// Must not exceed the pinned value (pipelined-unit intervals,
    /// which can beat one op per cycle on a superscalar issue stage).
    AtMost(f64),
}

/// One calibrated operation.
#[derive(Clone, Debug)]
pub struct OpMeasurement {
    /// Functional unit / opcode under test (e.g. `"int_div"`).
    pub name: &'static str,
    /// Whether this row probed latency or initiation interval.
    pub probe: Probe,
    /// The pinned expectation from the simulator configuration.
    pub expected: f64,
    /// The recovered per-op cycles.
    pub measured: f64,
    pin: Pin,
}

impl OpMeasurement {
    /// Whether the measurement matches the pinned expectation.
    #[must_use]
    pub fn passed(&self) -> bool {
        match self.pin {
            Pin::Exact(v) => self.measured == v,
            Pin::AtMost(v) => self.measured <= v,
        }
    }
}

/// The full calibration run.
#[derive(Clone, Debug)]
pub struct CalibrationReport {
    /// Every probed operation, in table order.
    pub ops: Vec<OpMeasurement>,
}

impl CalibrationReport {
    /// True when every operation matches its pin.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.ops.iter().all(OpMeasurement::passed)
    }

    /// JSON artifact (schema `tea-bench-calibration/v1`).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::Str(CALIBRATION_SCHEMA.into())),
            ("passed", Json::Bool(self.passed())),
            (
                "ops",
                Json::Arr(
                    self.ops
                        .iter()
                        .map(|op| {
                            Json::obj(vec![
                                ("name", Json::Str(op.name.into())),
                                ("probe", Json::Str(op.probe.as_str().into())),
                                ("expected", Json::Num(op.expected)),
                                ("measured", Json::Num(op.measured)),
                                ("passed", Json::Bool(op.passed())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Fixed-width table for the CLI.
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<10} {:>9} {:>9} {:>9}  {}\n",
            "op", "probe", "expected", "measured", "status"
        ));
        for op in &self.ops {
            out.push_str(&format!(
                "{:<10} {:>9} {:>9.2} {:>9.2}  {}\n",
                op.name,
                op.probe.as_str(),
                op.expected,
                op.measured,
                if op.passed() { "ok" } else { "DRIFT" },
            ));
        }
        out
    }
}

/// A borrowed assembly-emitting closure: a chain's setup prologue or
/// one step of its loop body.
type Emit<'a> = &'a dyn Fn(&mut Asm);

/// Simulated (cycles, squashes) of `program`.
fn run_cycles(program: &Program, cfg: &SimConfig) -> (u64, u64) {
    let stats = simulate(program, cfg.clone(), &mut [&mut NullObserver]);
    (stats.cycles, stats.squashes)
}

/// Builds the calibration loop: `setup`, then `iters` trips over a body
/// of [`STEPS`] chain steps plus the loop counter, then halt.
///
/// The body is the *same static code* regardless of `iters`, so
/// one-time costs that scale with code size — cold icache misses most
/// of all, which would otherwise add a fixed ~8 cycles per op and
/// swamp the short-latency units — are identical between the short and
/// long runs and cancel in the differencing. The counter decrement and
/// backward branch overlap the dependent chain and add nothing to the
/// critical path.
fn chain(iters: i64, setup: Emit<'_>, step: Emit<'_>) -> Program {
    let mut a = Asm::new();
    a.func("calibrate");
    setup(&mut a);
    a.li(Reg::A7, iters);
    let top = a.new_label();
    a.bind(top);
    for _ in 0..STEPS {
        step(&mut a);
    }
    a.addi(Reg::A7, Reg::A7, -1);
    a.bne(Reg::A7, Reg::ZERO, top);
    a.halt();
    a.finish().expect("calibration chain assembles")
}

/// Recovers per-step cycles by differencing an `ITERS`- and a
/// `2*ITERS`-trip run of the same loop body.
fn delta(cfg: &SimConfig, setup: Emit<'_>, step: Emit<'_>) -> f64 {
    let (short, squashes_short) = run_cycles(&chain(ITERS, setup, step), cfg);
    let (long, squashes_long) = run_cycles(&chain(2 * ITERS, setup, step), cfg);
    // Predictor warm-up and the final-trip mispredict hit both runs in
    // the same static places; anything else would skew the delta.
    assert_eq!(
        squashes_short, squashes_long,
        "squash behaviour must match between the differenced runs"
    );
    (long - short) as f64 / (ITERS as usize * STEPS) as f64
}

/// Calibrates against the paper's Table 2 configuration.
#[must_use]
pub fn calibrate() -> CalibrationReport {
    calibrate_with(&SimConfig::default())
}

/// Calibrates against an arbitrary configuration's latency table.
#[must_use]
pub fn calibrate_with(cfg: &SimConfig) -> CalibrationReport {
    let lat = cfg.lat;
    let mut ops = Vec::new();
    let mut push = |name, probe, expected: u64, pin, measured: f64| {
        ops.push(OpMeasurement {
            name,
            probe,
            expected: expected as f64,
            measured,
            pin,
        });
    };

    // Dependent chains: each op reads the previous op's destination, so
    // the recovered delta is the full producer-to-consumer latency.
    let dep: [(&'static str, u64, Emit<'_>, Emit<'_>); 7] = [
        (
            "int_alu",
            lat.int_alu,
            &|a| {
                a.li(Reg::T0, 0);
                a.li(Reg::T1, 1);
            },
            &|a| a.add(Reg::T0, Reg::T0, Reg::T1),
        ),
        (
            "int_mul",
            lat.int_mul,
            &|a| {
                a.li(Reg::T0, 1);
                a.li(Reg::T1, 1);
            },
            &|a| a.mul(Reg::T0, Reg::T0, Reg::T1),
        ),
        (
            "int_div",
            lat.int_div,
            &|a| {
                a.li(Reg::T0, 1 << 30);
                a.li(Reg::T1, 1);
            },
            &|a| a.div(Reg::T0, Reg::T0, Reg::T1),
        ),
        (
            "fp_alu",
            lat.fp_alu,
            &|a| {
                a.fli_d(FReg::FT0, 0.0);
                a.fli_d(FReg::FT1, 1.0);
            },
            &|a| a.fadd_d(FReg::FT0, FReg::FT0, FReg::FT1),
        ),
        (
            "fp_mul",
            lat.fp_mul,
            &|a| {
                a.fli_d(FReg::FT0, 1.0);
                a.fli_d(FReg::FT1, 1.0);
            },
            &|a| a.fmul_d(FReg::FT0, FReg::FT0, FReg::FT1),
        ),
        (
            "fp_div",
            lat.fp_div,
            &|a| {
                a.fli_d(FReg::FT0, 1.0);
                a.fli_d(FReg::FT1, 1.0);
            },
            &|a| a.fdiv_d(FReg::FT0, FReg::FT0, FReg::FT1),
        ),
        ("fp_sqrt", lat.fp_sqrt, &|a| a.fli_d(FReg::FT0, 1.0), &|a| {
            a.fsqrt_d(FReg::FT0, FReg::FT0)
        }),
    ];
    for (name, expected, setup, step) in dep {
        push(
            name,
            Probe::Latency,
            expected,
            Pin::Exact(expected as f64),
            delta(cfg, setup, step),
        );
    }

    // Store-to-load forwarding. The loaded value feeds the next store's
    // data, so each iteration is one forwarding hop through the store
    // queue. A naive `sd; ld` pair will not do: the load's address
    // register is loop-invariant, so the load issues speculatively
    // before the store's data resolves, reads stale memory, and the
    // store's memory-ordering check squashes it — poisoning the
    // differencing. Routing the load's address through two ALU ops that
    // depend on the store's data delays the load until the store has
    // issued, so every load forwards cleanly. The two address-
    // generation ALU hops are then subtracted from the recovered delta,
    // leaving exactly the forwarding latency.
    push(
        "forward",
        Probe::Latency,
        lat.forward,
        Pin::Exact(lat.forward as f64),
        delta(
            cfg,
            &|a| {
                a.li(Reg::A0, 0x9000);
                a.li(Reg::T0, 1);
            },
            &|a| {
                a.sd(Reg::T0, Reg::A0, 0);
                a.andi(Reg::T1, Reg::T0, 0);
                a.add(Reg::A1, Reg::T1, Reg::A0);
                a.ld(Reg::T0, Reg::A1, 0);
            },
        ) - 2.0 * lat.int_alu as f64,
    );

    // Independent chains: distinct destination registers, shared
    // read-only sources. Unpipelined units serialise on the busy unit
    // (interval == latency); pipelined units must sustain at least one
    // op per cycle.
    let indep: [(&'static str, u64, Pin, Emit<'_>, Emit<'_>); 4] = [
        (
            "int_mul",
            1,
            Pin::AtMost(1.0),
            &|a| {
                a.li(Reg::T0, 1);
                a.li(Reg::T1, 1);
            },
            &|a| {
                a.mul(Reg::T2, Reg::T0, Reg::T1);
                a.mul(Reg::T3, Reg::T0, Reg::T1);
            },
        ),
        (
            "int_div",
            lat.int_div,
            Pin::Exact(lat.int_div as f64),
            &|a| {
                a.li(Reg::T0, 1 << 30);
                a.li(Reg::T1, 3);
            },
            &|a| {
                a.div(Reg::T2, Reg::T0, Reg::T1);
                a.div(Reg::T3, Reg::T0, Reg::T1);
            },
        ),
        (
            "fp_div",
            lat.fp_div,
            Pin::Exact(lat.fp_div as f64),
            &|a| {
                a.fli_d(FReg::FT0, 1.0);
                a.fli_d(FReg::FT1, 3.0);
            },
            &|a| {
                a.fdiv_d(FReg::FT2, FReg::FT0, FReg::FT1);
                a.fdiv_d(FReg::FT3, FReg::FT0, FReg::FT1);
            },
        ),
        (
            "fp_sqrt",
            lat.fp_sqrt,
            Pin::Exact(lat.fp_sqrt as f64),
            &|a| a.fli_d(FReg::FT0, 2.0),
            &|a| {
                a.fsqrt_d(FReg::FT2, FReg::FT0);
                a.fsqrt_d(FReg::FT3, FReg::FT0);
            },
        ),
    ];
    for (name, expected, pin, setup, step) in indep {
        // Each step emits two ops, so halve the recovered delta.
        push(
            name,
            Probe::Interval,
            expected,
            pin,
            delta(cfg, setup, step) / 2.0,
        );
    }

    CalibrationReport { ops }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_in_calibration() {
        let report = calibrate();
        assert!(
            report.passed(),
            "latency drift against the pinned table:\n{}",
            report.render_table()
        );
        // Every Table 2 unit is covered by a latency probe.
        for name in [
            "int_alu", "int_mul", "int_div", "fp_alu", "fp_mul", "fp_div", "fp_sqrt", "forward",
        ] {
            assert!(
                report
                    .ops
                    .iter()
                    .any(|op| op.name == name && op.probe == Probe::Latency),
                "missing latency probe for {name}"
            );
        }
    }

    #[test]
    fn calibration_tracks_the_configured_latencies() {
        // The harness must measure, not echo: change the table and the
        // measured values must follow it.
        let mut cfg = SimConfig::default();
        cfg.lat.int_div = 23;
        cfg.lat.fp_sqrt = 31;
        cfg.lat.forward = 4;
        let report = calibrate_with(&cfg);
        assert!(
            report.passed(),
            "perturbed config fails to calibrate:\n{}",
            report.render_table()
        );
        let measured = |name: &str, probe: Probe| {
            report
                .ops
                .iter()
                .find(|op| op.name == name && op.probe == probe)
                .unwrap()
                .measured
        };
        assert_eq!(measured("int_div", Probe::Latency), 23.0);
        assert_eq!(measured("fp_sqrt", Probe::Latency), 31.0);
        assert_eq!(measured("forward", Probe::Latency), 4.0);
        assert_eq!(measured("int_div", Probe::Interval), 23.0);
    }

    #[test]
    fn drift_is_detected() {
        // A report calibrated against one table must fail another.
        let mut cfg = SimConfig::default();
        cfg.lat.int_mul += 1;
        let report = calibrate_with(&cfg);
        let drifted = report
            .ops
            .iter()
            .find(|op| op.name == "int_mul" && op.probe == Probe::Latency)
            .unwrap();
        assert_eq!(drifted.measured, cfg.lat.int_mul as f64);
        assert_ne!(drifted.measured, SimConfig::default().lat.int_mul as f64);
    }

    #[test]
    fn json_artifact_has_the_schema_and_verdict() {
        let report = calibrate();
        let doc = report.to_json();
        assert_eq!(
            doc.get("schema").unwrap().as_str().unwrap(),
            CALIBRATION_SCHEMA
        );
        assert!(matches!(doc.get("passed"), Some(Json::Bool(true))));
        let rendered = doc.render_pretty();
        assert!(rendered.contains("\"passed\": true"));
        assert!(!rendered.contains("NaN"));
    }
}
