//! # tea-bench
//!
//! Experiment harnesses that regenerate every table and figure of the
//! TEA paper (see DESIGN.md's per-experiment index), plus criterion
//! micro-benchmarks of the simulator itself.
//!
//! The harnesses run on the shared experiment engine
//! ([`tea_exp::Engine`]): each figure declares its cells (workload ×
//! config × interval × seed), the engine fans them out across a worker
//! pool, and the figure keeps only its aggregation and printing. The
//! [`ProfiledRun`] wrapper and [`profile_all_schemes`] /
//! [`profile_suite`] entry points survive as thin adapters over the
//! engine — one simulation pass with the golden reference and every
//! profiling scheme attached (the paper's out-of-band TraceDoctor
//! methodology, which guarantees all schemes sample the exact same
//! cycles), with [`ProfiledRun::error`] applying the Section 4 error
//! metric.

#![warn(missing_docs)]

pub mod calibration;
pub mod throughput;

use std::collections::HashMap;

use tea_core::golden::GoldenReference;
use tea_core::pics::{Granularity, Pics, UnitMap};
use tea_core::pics_error;
use tea_core::schemes::Scheme;
use tea_exp::{CellResult, CellSpec, Engine};
use tea_isa::program::Program;
use tea_sim::core::SimStats;
use tea_sim::SimConfig;

pub use tea_exp::ALL_SCHEMES;

/// Result of one profiled simulation run.
pub struct ProfiledRun {
    /// Core statistics of the run.
    pub stats: SimStats,
    /// The exact golden reference.
    pub golden: GoldenReference,
    /// Sampled PICS per scheme (in sample units).
    pub pics: HashMap<Scheme, Pics>,
    /// Samples taken per scheme.
    pub samples: HashMap<Scheme, u64>,
}

impl ProfiledRun {
    /// The Section 4 error of `scheme` at `granularity` for `program`.
    #[must_use]
    pub fn error(&self, scheme: Scheme, program: &Program, granularity: Granularity) -> f64 {
        let units = UnitMap::new(program, granularity);
        pics_error(
            &self.pics[&scheme],
            self.golden.pics(),
            scheme.event_set(),
            &units,
        )
    }

    /// Unwraps an engine cell into the harness-facing shape.
    ///
    /// Panics if the cell ran without the golden reference.
    #[must_use]
    pub fn from_cell(cell: CellResult) -> ProfiledRun {
        ProfiledRun {
            stats: cell.stats,
            golden: std::sync::Arc::try_unwrap(
                cell.golden
                    .expect("harness cells attach the golden reference"),
            )
            .unwrap_or_else(|shared| (*shared).clone()),
            pics: cell.pics,
            samples: cell.samples,
        }
    }
}

/// Runs `program` once with the golden reference and every scheme
/// sampling at `interval` cycles (identical jittered timers, so all
/// schemes fire in the same cycles, as in the paper's methodology).
#[must_use]
pub fn profile_all_schemes(program: &Program, interval: u64, seed: u64) -> ProfiledRun {
    profile_all_schemes_with(program, interval, seed, &SimConfig::default())
}

/// As [`profile_all_schemes`], with an explicit core configuration.
#[must_use]
pub fn profile_all_schemes_with(
    program: &Program,
    interval: u64,
    seed: u64,
    cfg: &SimConfig,
) -> ProfiledRun {
    let spec = CellSpec::new("adhoc", program.clone())
        .config("custom", cfg.clone())
        .interval(interval)
        .seed(seed);
    let cell = tea_exp::run_cell(0, spec).expect("ad-hoc profiling cell completes");
    ProfiledRun::from_cell(cell)
}

/// The default sampling interval of the experiment harnesses
/// (see [`tea_exp::DEFAULT_INTERVAL`] for the scaling rationale).
pub const HARNESS_INTERVAL: u64 = tea_exp::DEFAULT_INTERVAL;

/// Deterministic seed shared by all harnesses.
pub const HARNESS_SEED: u64 = tea_exp::DEFAULT_SEED;

/// Workload size for the harnesses: `Ref` unless the environment
/// variable `TEA_SIZE=test` asks for a quick run.
#[must_use]
pub fn size_from_env() -> tea_workloads::Size {
    match std::env::var("TEA_SIZE").as_deref() {
        Ok("test") | Ok("Test") | Ok("TEST") => tea_workloads::Size::Test,
        _ => tea_workloads::Size::Ref,
    }
}

/// Runs the full 18-benchmark suite through the engine (parallel when
/// `RAYON_NUM_THREADS`/`TEA_THREADS` allow), returning per-benchmark
/// profiled runs together with their programs.
#[must_use]
pub fn profile_suite(
    size: tea_workloads::Size,
    interval: u64,
) -> Vec<(tea_workloads::Workload, ProfiledRun)> {
    let workloads = tea_workloads::all_workloads(size);
    let cells = workloads
        .iter()
        .map(|w| {
            CellSpec::for_workload(w)
                .interval(interval)
                .seed(HARNESS_SEED)
        })
        .collect();
    let run = Engine::from_env().quiet().run("suite", cells);
    workloads
        .into_iter()
        .zip(run.cells)
        .map(|(w, cell)| {
            let cell = cell
                .into_result()
                .expect("suite workloads are known-good and must complete");
            (w, ProfiledRun::from_cell(cell))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tea_workloads::{lbm, Size};

    #[test]
    fn one_pass_profiles_every_scheme() {
        let p = lbm::program(Size::Test);
        let run = profile_all_schemes(&p, 509, 7);
        for s in ALL_SCHEMES {
            assert!(run.samples[&s] > 50, "{s} took too few samples");
            let e = run.error(s, &p, Granularity::Instruction);
            assert!((0.0..=1.0).contains(&e), "{s} error {e}");
        }
        // TEA must beat the front-end-tagging schemes on lbm.
        let tea = run.error(Scheme::Tea, &p, Granularity::Instruction);
        let ibs = run.error(Scheme::Ibs, &p, Granularity::Instruction);
        assert!(tea < ibs, "TEA {tea} must beat IBS {ibs}");
    }
}
