//! # tea-bench
//!
//! Experiment harnesses that regenerate every table and figure of the
//! TEA paper (see DESIGN.md's per-experiment index), plus criterion
//! micro-benchmarks of the simulator itself.
//!
//! The library part holds the shared experiment runner:
//! [`profile_all_schemes`] performs one simulation pass with the golden
//! reference and every profiling scheme attached — the paper's
//! out-of-band TraceDoctor methodology, which guarantees all schemes
//! sample the exact same cycles — and [`ProfiledRun::error`] applies
//! the Section 4 error metric.

#![warn(missing_docs)]

use std::collections::HashMap;

use tea_core::golden::GoldenReference;
use tea_core::nci::NciProfiler;
use tea_core::pics::{Granularity, Pics, UnitMap};
use tea_core::sampling::SampleTimer;
use tea_core::schemes::Scheme;
use tea_core::tagging::TaggingProfiler;
use tea_core::tea::TeaProfiler;
use tea_core::pics_error;
use tea_isa::program::Program;
use tea_sim::core::{Core, SimStats};
use tea_sim::trace::Observer;
use tea_sim::SimConfig;

/// Result of one profiled simulation run.
pub struct ProfiledRun {
    /// Core statistics of the run.
    pub stats: SimStats,
    /// The exact golden reference.
    pub golden: GoldenReference,
    /// Sampled PICS per scheme (in sample units).
    pub pics: HashMap<Scheme, Pics>,
    /// Samples taken per scheme.
    pub samples: HashMap<Scheme, u64>,
}

impl ProfiledRun {
    /// The Section 4 error of `scheme` at `granularity` for `program`.
    #[must_use]
    pub fn error(&self, scheme: Scheme, program: &Program, granularity: Granularity) -> f64 {
        let units = UnitMap::new(program, granularity);
        pics_error(&self.pics[&scheme], self.golden.pics(), scheme.event_set(), &units)
    }
}

/// All schemes evaluated by [`profile_all_schemes`].
pub const ALL_SCHEMES: [Scheme; 6] = [
    Scheme::Tea,
    Scheme::NciTea,
    Scheme::Ibs,
    Scheme::Spe,
    Scheme::Ris,
    Scheme::TeaDispatchTagged,
];

/// Runs `program` once with the golden reference and every scheme
/// sampling at `interval` cycles (identical jittered timers, so all
/// schemes fire in the same cycles, as in the paper's methodology).
#[must_use]
pub fn profile_all_schemes(program: &Program, interval: u64, seed: u64) -> ProfiledRun {
    profile_all_schemes_with(program, interval, seed, &SimConfig::default())
}

/// As [`profile_all_schemes`], with an explicit core configuration.
#[must_use]
pub fn profile_all_schemes_with(
    program: &Program,
    interval: u64,
    seed: u64,
    cfg: &SimConfig,
) -> ProfiledRun {
    let timer = || SampleTimer::with_jitter(interval, interval / 8, seed);
    let mut golden = GoldenReference::new();
    let mut tea = TeaProfiler::new(timer());
    let mut nci = NciProfiler::new(timer());
    let mut ibs = TaggingProfiler::new(Scheme::Ibs, timer());
    let mut spe = TaggingProfiler::new(Scheme::Spe, timer());
    let mut ris = TaggingProfiler::new(Scheme::Ris, timer());
    let mut tea_dt = TaggingProfiler::new(Scheme::TeaDispatchTagged, timer());
    let stats = {
        let mut observers: Vec<&mut dyn Observer> = vec![
            &mut golden,
            &mut tea,
            &mut nci,
            &mut ibs,
            &mut spe,
            &mut ris,
            &mut tea_dt,
        ];
        Core::new(program, cfg.clone()).run(&mut observers)
    };
    let mut pics = HashMap::new();
    let mut samples = HashMap::new();
    samples.insert(Scheme::Tea, tea.samples());
    samples.insert(Scheme::NciTea, nci.samples());
    samples.insert(Scheme::Ibs, ibs.samples());
    samples.insert(Scheme::Spe, spe.samples());
    samples.insert(Scheme::Ris, ris.samples());
    samples.insert(Scheme::TeaDispatchTagged, tea_dt.samples());
    pics.insert(Scheme::Tea, tea.into_pics());
    pics.insert(Scheme::NciTea, nci.into_pics());
    pics.insert(Scheme::Ibs, ibs.into_pics());
    pics.insert(Scheme::Spe, spe.into_pics());
    pics.insert(Scheme::Ris, ris.into_pics());
    pics.insert(Scheme::TeaDispatchTagged, tea_dt.into_pics());
    ProfiledRun { stats, golden, pics, samples }
}

/// The default sampling interval of the experiment harnesses.
///
/// The paper samples every 800 000 cycles over 10^11+-cycle runs; our
/// runs are ~10^6–10^7 cycles, so the interval is scaled to keep the
/// samples-per-instruction density comparable (see DESIGN.md).
pub const HARNESS_INTERVAL: u64 = 512;

/// Deterministic seed shared by all harnesses.
pub const HARNESS_SEED: u64 = 42;

/// Workload size for the harnesses: `Ref` unless the environment
/// variable `TEA_SIZE=test` asks for a quick run.
#[must_use]
pub fn size_from_env() -> tea_workloads::Size {
    match std::env::var("TEA_SIZE").as_deref() {
        Ok("test") | Ok("Test") | Ok("TEST") => tea_workloads::Size::Test,
        _ => tea_workloads::Size::Ref,
    }
}

/// Runs the full 18-benchmark suite, returning per-benchmark profiled
/// runs together with their programs.
#[must_use]
pub fn profile_suite(
    size: tea_workloads::Size,
    interval: u64,
) -> Vec<(tea_workloads::Workload, ProfiledRun)> {
    tea_workloads::all_workloads(size)
        .into_iter()
        .map(|w| {
            let run = profile_all_schemes(&w.program, interval, HARNESS_SEED);
            (w, run)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tea_workloads::{lbm, Size};

    #[test]
    fn one_pass_profiles_every_scheme() {
        let p = lbm::program(Size::Test);
        let run = profile_all_schemes(&p, 509, 7);
        for s in ALL_SCHEMES {
            assert!(run.samples[&s] > 50, "{s} took too few samples");
            let e = run.error(s, &p, Granularity::Instruction);
            assert!((0.0..=1.0).contains(&e), "{s} error {e}");
        }
        // TEA must beat the front-end-tagging schemes on lbm.
        let tea = run.error(Scheme::Tea, &p, Granularity::Instruction);
        let ibs = run.error(Scheme::Ibs, &p, Granularity::Instruction);
        assert!(tea < ibs, "TEA {tea} must beat IBS {ibs}");
    }
}
