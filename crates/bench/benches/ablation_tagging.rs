//! Ablation (Section 5.1 note): what exactly buys TEA its accuracy?
//!
//! * **TEA-DT** — TEA's full event set, but tagged at dispatch: the
//!   paper notes this performs like IBS/SPE/RIS, isolating
//!   *time-proportional sampling* (not the event set) as the source of
//!   accuracy.
//! * **NCI-TEA** — time-proportional-ish sampling at commit, but
//!   attributing flushes to the next-committing instruction: isolates
//!   the *last-committed-instruction* rule for the Flushed state.

use tea_bench::{profile_suite, size_from_env, HARNESS_INTERVAL};
use tea_core::pics::Granularity;
use tea_core::schemes::Scheme;

fn main() {
    let size = size_from_env();
    println!("=== Ablation: tagging point and flush attribution ===\n");
    let schemes = [
        Scheme::Ibs,
        Scheme::TeaDispatchTagged,
        Scheme::NciTea,
        Scheme::Tea,
    ];
    println!(
        "{:<12} {:>7} {:>8} {:>8} {:>7}   flushes",
        "benchmark", "IBS", "TEA-DT", "NCI-TEA", "TEA"
    );
    let mut sums = [0.0f64; 4];
    let suite = profile_suite(size, HARNESS_INTERVAL);
    for (w, run) in &suite {
        let mut row = [0.0f64; 4];
        for (i, s) in schemes.iter().enumerate() {
            row[i] = run.error(*s, &w.program, Granularity::Instruction);
            sums[i] += row[i];
        }
        println!(
            "{:<12} {:>7.1} {:>8.1} {:>8.1} {:>7.1}   {}",
            w.name,
            row[0] * 100.0,
            row[1] * 100.0,
            row[2] * 100.0,
            row[3] * 100.0,
            run.stats.squashes
        );
    }
    let n = suite.len() as f64;
    println!(
        "{:<12} {:>7.1} {:>8.1} {:>8.1} {:>7.1}",
        "average",
        sums[0] / n * 100.0,
        sums[1] / n * 100.0,
        sums[2] / n * 100.0,
        sums[3] / n * 100.0
    );
    println!("\nExpected shape: TEA-DT ~ IBS (the event set does not save a non-time-");
    println!("proportional tagger); NCI-TEA sits between (correct except after flushes);");
    println!("TEA needs both commit-time sampling and last-committed flush attribution.");
}
