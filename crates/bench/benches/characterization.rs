//! Workload characterization: IPC, commit-state mix and event rates of
//! every kernel — the sanity table that shows each synthetic benchmark
//! actually exhibits its namesake's bottleneck structure (the basis of
//! the DESIGN.md substitution argument).

use tea_bench::size_from_env;
use tea_sim::core::simulate;
use tea_sim::psv::{CommitState, Event};
use tea_sim::SimConfig;
use tea_workloads::all_workloads;

fn main() {
    let size = size_from_env();
    println!("=== Workload characterization ===\n");
    println!(
        "{:<12} {:>6} | {:>5} {:>5} {:>5} {:>5} | {:>6} {:>6} {:>6} {:>6} {:>6}  (PKI = per kilo-instruction)",
        "benchmark", "IPC", "cmp%", "stl%", "drn%", "fls%", "L1dPKI", "LLCPKI", "TLBPKI", "MBpki", "FLXpki"
    );
    for w in all_workloads(size) {
        let s = simulate(&w.program, SimConfig::default(), &mut []);
        let pct = |st: CommitState| s.cycles_in(st) as f64 / s.cycles as f64 * 100.0;
        let pki = |n: u64| n as f64 / s.retired as f64 * 1000.0;
        println!(
            "{:<12} {:>6.2} | {:>4.0}% {:>4.0}% {:>4.0}% {:>4.0}% | {:>6.1} {:>6.1} {:>6.1} {:>6.1} {:>6.1}",
            w.name,
            s.ipc(),
            pct(CommitState::Compute),
            pct(CommitState::Stalled),
            pct(CommitState::Drained),
            pct(CommitState::Flushed),
            pki(s.event_insts[Event::StL1 as usize]),
            pki(s.event_insts[Event::StLlc as usize]),
            pki(s.event_insts[Event::StTlb as usize]),
            pki(s.event_insts[Event::FlMb as usize]),
            pki(s.event_insts[Event::FlEx as usize]),
        );
    }
    println!("\nEach kernel's dominant column should match its SPEC namesake's known");
    println!("behaviour (lbm memory-bound, exchange2 branchy compute, gcc front-end, ...).");
}
