//! Table 1: the performance events of TEA, IBS, SPE and RIS.

use tea_core::schemes::{table1, Scheme};

fn main() {
    println!("=== Table 1: performance events per scheme ===\n");
    print!("{}", table1());
    println!();
    for s in [Scheme::Tea, Scheme::Ibs, Scheme::Spe, Scheme::Ris] {
        println!("{:<8} PSV storage: {} bits", s.name(), s.psv_bits());
    }
    println!(
        "\nPaper: TEA tracks 9 events; IBS/SPE/RIS need 6/5/7 bits for the tagged instruction."
    );
}
