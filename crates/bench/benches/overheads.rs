//! Section 3 "Overheads": storage, power, sample size and performance
//! overhead of TEA, reproduced from the core configuration.

use tea_core::overhead::{
    csr_bits_used, golden_reference_bytes, performance_overhead, StorageBreakdown, SAMPLE_BYTES,
    TIP_STORAGE_BYTES,
};
use tea_sim::core::simulate;
use tea_sim::SimConfig;
use tea_workloads::{lbm, Size};

fn main() {
    println!("=== Section 3: TEA overheads ===\n");
    let cfg = SimConfig::default();
    let b = StorageBreakdown::for_config(&cfg);
    println!("storage (bits):");
    println!(
        "  fetch buffer (2b x {:>3} entries)   {:>6}",
        cfg.fetch_buffer, b.fetch_buffer_bits
    );
    println!(
        "  ROB PSVs     (9b x {:>3} entries)   {:>6}",
        cfg.rob_entries, b.rob_bits
    );
    println!(
        "  LSU ST-TLB   (1b x {:>3} entries)   {:>6}",
        cfg.ldq_entries + cfg.stq_entries,
        b.lsq_bits
    );
    println!(
        "  last-committed PSV register        {:>6}",
        b.last_committed_bits
    );
    println!(
        "  fetch packet registers             {:>6}",
        b.fetch_regs_bits
    );
    println!(
        "  decode/dispatch staging            {:>6}",
        b.decode_dispatch_bits
    );
    println!(
        "  dispatch DR-SQ                     {:>6}",
        b.dispatch_drsq_bits
    );
    println!("  -------------------------------------------");
    println!("  TEA total   {:>4} B   (paper: 249 B)", b.total_bytes());
    println!(
        "  TEA + TIP   {:>4} B   (paper: 306 B; TIP alone {TIP_STORAGE_BYTES} B)",
        b.with_tip_bytes()
    );
    println!(
        "  ROB+fetch-buffer fraction {:.1}%   (paper: 91.7%)",
        b.rob_fetch_buffer_fraction() * 100.0
    );
    println!();
    println!(
        "power: {:.2} mW added state, {:.3}% of a 4.7 W core   (paper: ~3.2 mW, ~0.1%)",
        b.power_mw(),
        b.power_fraction_of_core() * 100.0
    );
    println!();
    println!(
        "sample path: {} B per sample; CSR bits used {} of 64   (paper: 88 B, 46 bits)",
        SAMPLE_BYTES,
        csr_bits_used(cfg.commit_width)
    );
    println!();
    println!("performance overhead of sampling (handler model):");
    for freq in [1000.0, 2000.0, 4000.0, 8000.0, 16000.0] {
        println!(
            "  {:>6.0} Hz  {:>6.2}%",
            freq,
            performance_overhead(freq) * 100.0
        );
    }
    println!("  (paper: 1.1% at 4 kHz)");
    println!();
    let stats = simulate(&lbm::program(Size::Test), SimConfig::default(), &mut []);
    println!(
        "golden-reference trace volume for the lbm test run ({} insts, {} cycles): {:.1} MB;",
        stats.retired,
        stats.cycles,
        golden_reference_bytes(stats.retired, stats.cycles) as f64 / 1e6
    );
    println!("at paper scale (10^12-cycle runs) this is petabytes — the reason the");
    println!("golden reference is unimplementable in hardware and TEA samples instead.");
}
