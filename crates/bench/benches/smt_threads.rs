//! Extension experiment (Section 3): TEA per logical core under
//! hardware multithreading. Two hardware threads share the core's
//! cycles and the entire memory hierarchy; each logical core has its own
//! TEA unit, and each thread's PICS still identify that thread's own
//! bottleneck.

use tea_bench::size_from_env;
use tea_core::golden::GoldenReference;
use tea_core::sampling::SampleTimer;
use tea_core::tea::TeaProfiler;
use tea_sim::core::simulate;
use tea_sim::smt::SmtCore;
use tea_sim::trace::Observer;
use tea_sim::SimConfig;
use tea_workloads::{fotonik3d, nab};

fn main() {
    let size = size_from_env();
    let prog_a = nab::program(size);
    let prog_b = fotonik3d::program(size);
    let cfg = SimConfig::default();
    println!("=== Hardware multithreading: one TEA unit per logical core ===\n");

    let mut solo_a = GoldenReference::new();
    simulate(&prog_a, cfg.clone(), &mut [&mut solo_a]);
    let mut solo_b = GoldenReference::new();
    simulate(&prog_b, cfg.clone(), &mut [&mut solo_b]);

    let mut smt = SmtCore::new(&[&prog_a, &prog_b], &cfg);
    let mut tea_a = TeaProfiler::new(SampleTimer::with_jitter(512, 64, 61));
    let mut tea_b = TeaProfiler::new(SampleTimer::with_jitter(512, 64, 62));
    {
        let mut obs: Vec<Vec<&mut dyn Observer>> = vec![vec![&mut tea_a], vec![&mut tea_b]];
        smt.run(&mut obs, u64::MAX);
    }
    println!(
        "global clock {} cycles; thread active cycles: nab {}, fotonik3d {}\n",
        smt.cycle(),
        smt.stats(0).cycles,
        smt.stats(1).cycles
    );
    for (tid, (name, tea, solo, program)) in [
        ("nab", &tea_a, &solo_a, &prog_a),
        ("fotonik3d", &tea_b, &solo_b, &prog_b),
    ]
    .into_iter()
    .enumerate()
    {
        let smt_top = tea.pics().top_instructions(1)[0].0;
        let solo_top = solo.pics().top_instructions(1)[0].0;
        let inst = program
            .inst_at(smt_top)
            .map(|i| i.to_string())
            .unwrap_or_default();
        println!(
            "thread {tid} ({name:<10}): TEA top {smt_top:#x} ({inst}); solo golden top {solo_top:#x} — {}",
            if smt_top == solo_top { "MATCH" } else { "differs" }
        );
    }
    println!("\nExpected shape: each logical core's TEA finds its own thread's critical");
    println!("instruction (nab's fsqrt.d, fotonik3d's stream load) despite cycle-level");
    println!("interleaving and a fully shared cache hierarchy.");
}
