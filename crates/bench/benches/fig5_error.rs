//! Figure 5: PICS error per benchmark for IBS, SPE, RIS, NCI-TEA and
//! TEA against the golden reference (instruction granularity).
//!
//! Runs through the experiment engine: one cell per benchmark, fanned
//! out across `RAYON_NUM_THREADS`/`TEA_THREADS` workers, with a
//! `tea-experiment/v1` JSON artifact dropped under `target/experiments/`.

use tea_bench::{size_from_env, HARNESS_INTERVAL, HARNESS_SEED};
use tea_core::pics::Granularity;
use tea_core::schemes::Scheme;
use tea_exp::{CellSpec, Engine};
use tea_workloads::all_workloads;

fn main() {
    let size = size_from_env();
    println!("=== Figure 5: PICS error vs golden reference (instruction granularity) ===\n");
    let schemes = [
        Scheme::Ibs,
        Scheme::Spe,
        Scheme::Ris,
        Scheme::NciTea,
        Scheme::Tea,
    ];

    let cells = all_workloads(size)
        .iter()
        .map(|w| {
            CellSpec::for_workload(w)
                .interval(HARNESS_INTERVAL)
                .seed(HARNESS_SEED)
        })
        .collect();
    let engine = Engine::from_env();
    let run = engine.run("fig5-error", cells);

    println!(
        "{:<12} {:>7} {:>7} {:>7} {:>7} {:>7}   {:>9} {:>8}",
        "benchmark", "IBS", "SPE", "RIS", "NCI-TEA", "TEA", "cycles", "samples"
    );
    let mut sums = [0.0f64; 5];
    for cell in &run.cells {
        let cell = cell.result().expect("figure cells must complete");
        let mut row = [0.0f64; 5];
        for (i, s) in schemes.iter().enumerate() {
            row[i] = cell
                .error(*s, Granularity::Instruction)
                .expect("golden attached");
            sums[i] += row[i];
        }
        println!(
            "{:<12} {:>7.1} {:>7.1} {:>7.1} {:>7.1} {:>7.1}   {:>9} {:>8}",
            cell.spec.workload,
            row[0] * 100.0,
            row[1] * 100.0,
            row[2] * 100.0,
            row[3] * 100.0,
            row[4] * 100.0,
            cell.stats.cycles,
            cell.samples[&Scheme::Tea]
        );
    }
    let n = run.cells.len() as f64;
    println!(
        "{:<12} {:>7.1} {:>7.1} {:>7.1} {:>7.1} {:>7.1}",
        "average",
        sums[0] / n * 100.0,
        sums[1] / n * 100.0,
        sums[2] / n * 100.0,
        sums[3] / n * 100.0,
        sums[4] / n * 100.0
    );
    println!("\nPaper averages: IBS 55.6%, SPE 55.5%, RIS 56.0%, NCI-TEA 11.3%, TEA 2.1%.");
    println!("Expected shape: TEA << NCI-TEA << IBS ~ SPE <~ RIS.");
    println!(
        "\n{} cells on {} threads in {:.2}s ({:.2} Msim-inst/s aggregate)",
        run.cells.len(),
        run.threads,
        run.wall.as_secs_f64(),
        run.sim_mips()
    );
    match run.write_artifact() {
        Ok(path) => println!("results artifact: {}", path.display()),
        Err(e) => tea_obs::warn(
            "tea_bench::fig5_error",
            "could not write results artifact",
            &[("error", tea_obs::Value::str(e.to_string()))],
        ),
    }
}
