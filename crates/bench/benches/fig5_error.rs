//! Figure 5: PICS error per benchmark for IBS, SPE, RIS, NCI-TEA and
//! TEA against the golden reference (instruction granularity).

use tea_bench::{profile_suite, size_from_env, HARNESS_INTERVAL};
use tea_core::pics::Granularity;
use tea_core::schemes::Scheme;

fn main() {
    let size = size_from_env();
    println!("=== Figure 5: PICS error vs golden reference (instruction granularity) ===\n");
    let schemes = [Scheme::Ibs, Scheme::Spe, Scheme::Ris, Scheme::NciTea, Scheme::Tea];
    println!(
        "{:<12} {:>7} {:>7} {:>7} {:>7} {:>7}   {:>9} {:>8}",
        "benchmark", "IBS", "SPE", "RIS", "NCI-TEA", "TEA", "cycles", "samples"
    );
    let mut sums = [0.0f64; 5];
    let suite = profile_suite(size, HARNESS_INTERVAL);
    for (w, run) in &suite {
        let mut row = [0.0f64; 5];
        for (i, s) in schemes.iter().enumerate() {
            row[i] = run.error(*s, &w.program, Granularity::Instruction);
            sums[i] += row[i];
        }
        println!(
            "{:<12} {:>7.1} {:>7.1} {:>7.1} {:>7.1} {:>7.1}   {:>9} {:>8}",
            w.name,
            row[0] * 100.0,
            row[1] * 100.0,
            row[2] * 100.0,
            row[3] * 100.0,
            row[4] * 100.0,
            run.stats.cycles,
            run.samples[&Scheme::Tea]
        );
    }
    let n = suite.len() as f64;
    println!(
        "{:<12} {:>7.1} {:>7.1} {:>7.1} {:>7.1} {:>7.1}",
        "average",
        sums[0] / n * 100.0,
        sums[1] / n * 100.0,
        sums[2] / n * 100.0,
        sums[3] / n * 100.0,
        sums[4] / n * 100.0
    );
    println!("\nPaper averages: IBS 55.6%, SPE 55.5%, RIS 56.0%, NCI-TEA 11.3%, TEA 2.1%.");
    println!("Expected shape: TEA << NCI-TEA << IBS ~ SPE <~ RIS.");
}
