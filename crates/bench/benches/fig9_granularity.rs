//! Figure 9: error at instruction and function granularity (the paper
//! notes basic-block and application granularity show the same trends —
//! included here for completeness).
//!
//! The key observation: the front-end-tagging schemes stay inaccurate
//! even at coarse granularity, because their cycles are systematically
//! misattributed to the wrong *events*, not just the wrong instruction.

use tea_bench::{profile_suite, size_from_env, HARNESS_INTERVAL};
use tea_core::pics::Granularity;
use tea_core::schemes::Scheme;

fn main() {
    let size = size_from_env();
    println!("=== Figure 9: error by analysis granularity ===\n");
    let schemes = [
        Scheme::Ibs,
        Scheme::Spe,
        Scheme::Ris,
        Scheme::NciTea,
        Scheme::Tea,
    ];
    let suite = profile_suite(size, HARNESS_INTERVAL);
    println!(
        "{:<14} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "granularity", "IBS", "SPE", "RIS", "NCI-TEA", "TEA"
    );
    for g in Granularity::ALL {
        let mut sums = [0.0f64; 5];
        for (w, run) in &suite {
            for (i, s) in schemes.iter().enumerate() {
                sums[i] += run.error(*s, &w.program, g);
            }
        }
        let n = suite.len() as f64;
        println!(
            "{:<14} {:>7.1} {:>7.1} {:>7.1} {:>7.1} {:>7.1}",
            g.name(),
            sums[0] / n * 100.0,
            sums[1] / n * 100.0,
            sums[2] / n * 100.0,
            sums[3] / n * 100.0,
            sums[4] / n * 100.0
        );
    }
    println!("\nExpected shape: error shrinks with coarser units but the baselines stay");
    println!("far from zero (event misattribution survives aggregation); TEA is");
    println!("uniformly the most accurate.");
}
