//! Section 2/3 side statistics:
//!
//! * the fraction of event-subjected dynamic instructions that see
//!   *combined* events (the paper reports 30.0 %), and
//! * the 99th percentile of commit-stall durations among instructions
//!   TEA assigns no event to (the paper reports 5.8 cycles — evidence
//!   that the nine chosen events cover everything that matters).

use tea_bench::size_from_env;
use tea_core::golden::GoldenReference;
use tea_sim::core::simulate;
use tea_sim::SimConfig;
use tea_workloads::all_workloads;

fn main() {
    let size = size_from_env();
    println!("=== Combined-event fraction and eventless stall coverage ===\n");
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "benchmark", "eventful", "combined", "comb.%", "stall p99", "stall p99.9"
    );
    let mut tot_eventful = 0u64;
    let mut tot_combined = 0u64;
    let mut worst_p99 = 0.0f64;
    let mut pooled_stalls: Vec<u64> = Vec::new();
    for w in all_workloads(size) {
        let mut golden = GoldenReference::new();
        let stats = simulate(&w.program, SimConfig::default(), &mut [&mut golden]);
        let p99 = golden.eventless_stall_quantile(0.99).unwrap_or(0.0);
        let p999 = golden.eventless_stall_quantile(0.999).unwrap_or(0.0);
        worst_p99 = worst_p99.max(p99);
        tot_eventful += stats.eventful_insts;
        tot_combined += stats.combined_event_insts;
        pooled_stalls.extend_from_slice(golden.eventless_stalls());
        println!(
            "{:<12} {:>10} {:>10} {:>9.1}% {:>12.1} {:>12.1}",
            w.name,
            stats.eventful_insts,
            stats.combined_event_insts,
            stats.combined_event_fraction() * 100.0,
            p99,
            p999
        );
    }
    println!(
        "\noverall combined-event fraction: {:.1}%   (paper: 30.0%)",
        tot_combined as f64 / tot_eventful.max(1) as f64 * 100.0
    );
    pooled_stalls.sort_unstable();
    let pooled_q = |q: f64| {
        if pooled_stalls.is_empty() {
            0.0
        } else {
            pooled_stalls[((pooled_stalls.len() - 1) as f64 * q) as usize] as f64
        }
    };
    println!(
        "pooled eventless-stall p95/p99/p99.9: {:.1} / {:.1} / {:.1} cycles   (paper p99: 5.8)",
        pooled_q(0.95),
        pooled_q(0.99),
        pooled_q(0.999)
    );
    println!("worst per-benchmark eventless-stall p99: {worst_p99:.1} cycles");
    println!("\nExpected shape: combined events are a significant minority; stalls of");
    println!("instructions with empty PSVs are short (the event set explains all long");
    println!("stalls).");
}
