//! Section 6's event-counting critique, reproduced as an experiment:
//! lbm's load instructions all miss the cache at nearly the same rate,
//! so an event-counting profile (a PMC sampling on ST-L1) cannot tell
//! which of them costs time — while the golden PICS (and TEA) show that
//! one load carries almost all of it. "The key problem is that event
//! counting does not differentiate between hidden and non-hidden
//! misses."

use tea_bench::size_from_env;
use tea_core::golden::GoldenReference;
use tea_core::pmc::PmcProfiler;
use tea_sim::core::Core;
use tea_sim::psv::Event;
use tea_sim::trace::Observer;
use tea_sim::SimConfig;
use tea_workloads::lbm;

fn main() {
    let size = size_from_env();
    println!("=== Event counting vs time-proportional impact on lbm's loads ===\n");
    let program = lbm::program(size);
    let mut golden = GoldenReference::new();
    let mut pmc = PmcProfiler::new(Event::StL1, 16);
    {
        let mut obs: Vec<&mut dyn Observer> = vec![&mut golden, &mut pmc];
        Core::new(&program, SimConfig::default()).run(&mut obs);
    }
    let total = golden.pics().total();
    println!(
        "{:<10} {:>14} {:>16} {:>12}",
        "load", "ST-L1 count", "PMC estimate", "impact %time"
    );
    let mut counts = Vec::new();
    let mut impacts = Vec::new();
    for (addr, inst) in program.iter() {
        if inst.mnemonic() != "fld" {
            continue;
        }
        let count = golden.event_counts().count(addr, Event::StL1);
        let impact = golden.pics().instruction_total(addr) / total;
        counts.push(count as f64);
        impacts.push(impact);
        println!(
            "{:<10} {:>14} {:>16} {:>11.2}%",
            format!("{addr:#x}"),
            count,
            pmc.estimated_count(addr),
            impact * 100.0
        );
    }
    let max_c = counts.iter().cloned().fold(0.0f64, f64::max);
    let min_c = counts.iter().cloned().fold(f64::INFINITY, f64::min);
    let max_i = impacts.iter().cloned().fold(0.0f64, f64::max);
    let med_i = {
        let mut v = impacts.clone();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    };
    println!(
        "\nmiss counts are uniform (max/min = {:.2}) but impact is not (top = {:.1}% of",
        max_c / min_c.max(1.0),
        max_i * 100.0
    );
    println!(
        "time vs median {:.1}%): the counter profile cannot locate the bottleneck.",
        med_i * 100.0
    );
    println!("(Paper: lbm's 11 loads each incur 3.3-3.9 billion misses; only one is");
    println!("performance-critical.)");
}
