//! Criterion benchmark of end-to-end simulator throughput: bare
//! simulated cycles/second, the same run under the full profiled
//! observer set (golden reference plus the five sampling schemes), and
//! the profiled run replaying a pre-captured instruction trace (the
//! warm-trace-cache path of an experiment matrix).
//!
//! `tea-cli bench` measures the identical code paths and writes the
//! tracked `BENCH_sim_throughput.json` artifact; this harness exists so
//! `cargo bench --bench sim_throughput` gives the same numbers with
//! criterion's warmup/batching for quick local before/after comparison.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use tea_bench::throughput::{profiled_replay_run, profiled_run};
use tea_bench::HARNESS_SEED;
use tea_isa::CapturedTrace;
use tea_sim::core::simulate;
use tea_sim::SimConfig;
use tea_workloads::{all_workloads, Size, Workload};

const SAMPLE_INTERVAL: u64 = 512;

fn representative_workloads() -> Vec<Workload> {
    // A memory-bound, a pointer-chasing, and a control-heavy workload
    // cover the simulator's distinct hot-path mixes without the full
    // suite's bench runtime.
    all_workloads(Size::Test)
        .into_iter()
        .filter(|w| matches!(w.name, "lbm" | "mcf" | "gcc"))
        .collect()
}

fn bench_bare_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_throughput/bare");
    for w in representative_workloads() {
        let cycles = simulate(&w.program, SimConfig::default(), &mut []).cycles;
        g.throughput(Throughput::Elements(cycles));
        g.bench_function(w.name, |b| {
            b.iter(|| simulate(&w.program, SimConfig::default(), &mut []))
        });
    }
    g.finish();
}

fn bench_profiled_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_throughput/profiled");
    for w in representative_workloads() {
        let (cycles, _) = profiled_run(&w, SAMPLE_INTERVAL, HARNESS_SEED);
        g.throughput(Throughput::Elements(cycles));
        g.bench_function(w.name, |b| {
            b.iter(|| profiled_run(&w, SAMPLE_INTERVAL, HARNESS_SEED))
        });
    }
    g.finish();
}

fn bench_replayed_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_throughput/replay");
    for w in representative_workloads() {
        let trace =
            Arc::new(CapturedTrace::capture_default(&w.program).expect("bench workloads halt"));
        let (cycles, _) = profiled_replay_run(&w.program, &trace, SAMPLE_INTERVAL, HARNESS_SEED);
        g.throughput(Throughput::Elements(cycles));
        g.bench_function(w.name, |b| {
            b.iter(|| profiled_replay_run(&w.program, &trace, SAMPLE_INTERVAL, HARNESS_SEED))
        });
    }
    g.finish();
}

fn bench_sample_attribution(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_throughput/samples");
    for w in representative_workloads() {
        let (_, samples) = profiled_run(&w, SAMPLE_INTERVAL, HARNESS_SEED);
        g.throughput(Throughput::Elements(samples));
        g.bench_function(w.name, |b| {
            b.iter(|| profiled_run(&w, SAMPLE_INTERVAL, HARNESS_SEED))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_bare_sim,
    bench_profiled_sim,
    bench_replayed_sim,
    bench_sample_attribution
);
criterion_main!(benches);
