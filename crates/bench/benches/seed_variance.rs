//! Statistical robustness of the Figure 5 result: TEA's error is
//! sampling noise (it shrinks with frequency, Figure 8) while the
//! baselines' error is structural. Here we re-run a representative
//! workload subset under ten different sampling-jitter seeds and report
//! mean ± standard deviation of the error per scheme: TEA's spread
//! should be small and its worst seed still far below every baseline's
//! best seed.
//!
//! The (workload × seed) matrix runs through the experiment engine —
//! forty shared-nothing cells, fanned out over the worker pool.

use tea_bench::{size_from_env, HARNESS_INTERVAL};
use tea_core::pics::Granularity;
use tea_core::schemes::Scheme;
use tea_exp::{Engine, Matrix};
use tea_workloads::all_workloads;

fn main() {
    let size = size_from_env();
    let subset = ["lbm", "omnetpp", "exchange2", "xz"];
    let workloads: Vec<_> = all_workloads(size)
        .into_iter()
        .filter(|w| subset.contains(&w.name))
        .collect();
    let schemes = [Scheme::Ibs, Scheme::NciTea, Scheme::Tea];
    let seeds: Vec<u64> = (0..10u64).map(|s| s * 7 + 1).collect();

    let matrix = Matrix::new()
        .workloads(workloads.clone())
        .intervals(&[HARNESS_INTERVAL])
        .seeds(&seeds);
    let run = Engine::from_env().run("seed-variance", matrix.cells());

    println!("=== Error across 10 sampling seeds (mean ± std, worst) ===\n");
    println!(
        "{:<12} {:>24} {:>24} {:>24}",
        "benchmark", "IBS", "NCI-TEA", "TEA"
    );
    // Matrix order is workload-major, seeds innermost: chunk by seeds.
    for (w, cells) in workloads.iter().zip(run.cells.chunks(seeds.len())) {
        let mut per_scheme: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
        for cell in cells {
            let cell = cell.result().expect("figure cells must complete");
            for (i, s) in schemes.iter().enumerate() {
                per_scheme[i].push(
                    cell.error(*s, Granularity::Instruction)
                        .expect("golden attached"),
                );
            }
        }
        let fmt = |v: &[f64]| {
            let n = v.len() as f64;
            let mean = v.iter().sum::<f64>() / n;
            let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
            let worst = v.iter().cloned().fold(0.0f64, f64::max);
            format!(
                "{:5.1} ± {:4.1} (w {:4.1})",
                mean * 100.0,
                var.sqrt() * 100.0,
                worst * 100.0
            )
        };
        println!(
            "{:<12} {:>24} {:>24} {:>24}",
            w.name,
            fmt(&per_scheme[0]),
            fmt(&per_scheme[1]),
            fmt(&per_scheme[2])
        );
    }
    println!("\nExpected shape: TEA's worst seed stays an order of magnitude below the");
    println!("baselines' best; the baselines' spread is tiny because their error is");
    println!("structural, not statistical.");
    let _ = run.write_artifact();
}
