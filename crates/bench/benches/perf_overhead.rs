//! Section 3's runtime overhead, measured empirically: the core takes a
//! real sampling interrupt every N cycles (pipeline flush + handler),
//! and we compare end-to-end runtime against a run with sampling off.
//!
//! The paper reports 1.1 % at 4 kHz on a 3.2 GHz core — one interrupt
//! per 800 000 cycles with a handler storing an 88 B sample. Unlike the
//! analytic model in `tea_core::overhead`, this uses the *unscaled*
//! interval, so only the longer workloads accumulate enough interrupts
//! to measure.

use tea_bench::size_from_env;
use tea_core::overhead::HANDLER_CYCLES_PER_SAMPLE;
use tea_sim::config::SamplingInjection;
use tea_sim::core::simulate;
use tea_sim::SimConfig;
use tea_workloads::all_workloads;

fn main() {
    let size = size_from_env();
    println!("=== Section 3: sampling runtime overhead (measured by injection) ===\n");
    let handler = HANDLER_CYCLES_PER_SAMPLE as u64;
    println!(
        "{:<12} {:>11} | {:>9} {:>9} {:>9} {:>9}   (overhead % at kHz-equivalent)",
        "benchmark", "base cycles", "1 kHz", "4 kHz", "8 kHz", "16 kHz"
    );
    let mut sums = [0.0f64; 4];
    let mut n = 0.0;
    for w in all_workloads(size) {
        let base = simulate(&w.program, SimConfig::default(), &mut []).cycles;
        let mut row = [0.0f64; 4];
        for (i, interval) in [3_200_000u64, 800_000, 400_000, 200_000]
            .into_iter()
            .enumerate()
        {
            let cfg = SimConfig {
                sampling_injection: Some(SamplingInjection {
                    interval,
                    handler_cycles: handler,
                }),
                ..SimConfig::default()
            };
            let s = simulate(&w.program, cfg, &mut []);
            row[i] = s.cycles as f64 / base as f64 - 1.0;
            sums[i] += row[i];
        }
        n += 1.0;
        println!(
            "{:<12} {:>11} | {:>8.2}% {:>8.2}% {:>8.2}% {:>8.2}%",
            w.name,
            base,
            row[0] * 100.0,
            row[1] * 100.0,
            row[2] * 100.0,
            row[3] * 100.0
        );
    }
    println!(
        "{:<12} {:>11} | {:>8.2}% {:>8.2}% {:>8.2}% {:>8.2}%",
        "average",
        "",
        sums[0] / n * 100.0,
        sums[1] / n * 100.0,
        sums[2] / n * 100.0,
        sums[3] / n * 100.0
    );
    println!("\nPaper: 1.1% at 4 kHz; overhead scales linearly with frequency. Short");
    println!("workloads see quantisation (few interrupts per run).");
}
