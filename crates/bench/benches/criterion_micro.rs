//! Criterion micro-benchmarks of the simulator and analysis substrate:
//! simulation throughput, cache/TLB/predictor hot paths, and PICS
//! aggregation/error computation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use tea_core::pics::{Granularity, Pics, UnitMap};
use tea_core::pics_error;
use tea_core::sampling::SampleTimer;
use tea_core::tea::TeaProfiler;
use tea_isa::Machine;
use tea_sim::branch::{BranchPredictor, ControlKind};
use tea_sim::cache::Cache;
use tea_sim::core::{simulate, Core};
use tea_sim::psv::{Event, Psv};
use tea_sim::SimConfig;
use tea_workloads::{exchange2, lbm, mcf, Size};

fn bench_simulator_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    for (name, program) in [
        ("exchange2", exchange2::program(Size::Test)),
        ("lbm", lbm::program(Size::Test)),
        ("mcf", mcf::program(Size::Test)),
    ] {
        let cycles = simulate(&program, SimConfig::default(), &mut []).cycles;
        g.throughput(Throughput::Elements(cycles));
        g.bench_function(format!("cycles/{name}"), |b| {
            b.iter(|| simulate(&program, SimConfig::default(), &mut []))
        });
    }
    g.finish();
}

fn bench_profiler_overhead(c: &mut Criterion) {
    let program = exchange2::program(Size::Test);
    let mut g = c.benchmark_group("observer");
    g.bench_function("no_observer", |b| {
        b.iter(|| simulate(&program, SimConfig::default(), &mut []))
    });
    g.bench_function("tea_profiler", |b| {
        b.iter(|| {
            let mut tea = TeaProfiler::new(SampleTimer::periodic(509));
            let mut core = Core::new(&program, SimConfig::default());
            core.run(&mut [&mut tea])
        })
    });
    g.finish();
}

fn bench_interpreter(c: &mut Criterion) {
    let program = exchange2::program(Size::Test);
    c.bench_function("interpreter/exchange2", |b| {
        b.iter(|| {
            let mut m = Machine::new(&program);
            m.run(u64::MAX)
        })
    });
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache/strided_access", |b| {
        b.iter_batched(
            || Cache::new(SimConfig::default().l1d),
            |mut cache| {
                for i in 0..1000u64 {
                    let _ = cache.access(i * 64, i);
                    cache.record_fill(i * 64, i + 100);
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_predictor(c: &mut Criterion) {
    c.bench_function("branch/gshare_predict", |b| {
        b.iter_batched(
            || BranchPredictor::new(&SimConfig::default().branch),
            |mut bp| {
                let mut x = 1u64;
                for i in 0..1000u64 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let _ = bp.predict_and_update(
                        0x1000 + (i % 16) * 4,
                        ControlKind::Conditional,
                        x >> 63 == 1,
                        0x2000,
                    );
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_pics(c: &mut Criterion) {
    let program = exchange2::program(Size::Test);
    let units = UnitMap::new(&program, Granularity::Function);
    let mut golden = Pics::new();
    let mut scheme = Pics::new();
    for i in 0..200u64 {
        let psv = if i % 3 == 0 {
            Psv::from_events(&[Event::StL1])
        } else {
            Psv::empty()
        };
        golden.add(0x1_0000 + i * 4, psv, (i % 17) as f64 + 1.0);
        scheme.add(0x1_0000 + i * 4, psv, (i % 13) as f64 + 1.0);
    }
    c.bench_function("pics/error_metric", |b| {
        b.iter(|| pics_error(&scheme, &golden, Psv::from_bits(Psv::ALL_BITS), &units))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_simulator_throughput, bench_profiler_overhead, bench_interpreter,
              bench_cache, bench_predictor, bench_pics
}
criterion_main!(benches);
