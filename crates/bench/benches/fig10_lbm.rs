//! Figure 10: lbm performance analysis — TEA identifies the
//! performance-critical streaming load (ST-L1+ST-LLC dominated),
//! whereas IBS attributes the problem to arithmetic instructions that
//! happen to dispatch while that load stalls at the ROB head.

use tea_bench::{profile_all_schemes, size_from_env, HARNESS_INTERVAL, HARNESS_SEED};
use tea_core::render::render_top_instructions;
use tea_core::sampling::SampleTimer;
use tea_core::schemes::Scheme;
use tea_core::tip::TipProfiler;
use tea_sim::core::simulate;
use tea_sim::SimConfig;
use tea_workloads::lbm;

fn main() {
    let size = size_from_env();
    println!("=== Figure 10: lbm — TEA vs IBS vs golden reference ===\n");
    let program = lbm::program(size);

    // The paper's Section 6 narrative starts with TIP: time-proportional,
    // so it finds the right instruction — but its "why" is only the
    // commit state.
    let mut tip = TipProfiler::new(SampleTimer::with_jitter(
        HARNESS_INTERVAL,
        HARNESS_INTERVAL / 8,
        HARNESS_SEED,
    ));
    simulate(&program, SimConfig::default(), &mut [&mut tip]);
    let (tip_top, _) = tip.profile().top_instructions(1)[0];
    println!(
        "--- step 0, prior work (TIP): top instruction {:#x} ({}), dominant state {} ---\n\
         (correct instruction, but no events: the developer must guess the cause)\n",
        tip_top,
        program
            .inst_at(tip_top)
            .map(|i| i.to_string())
            .unwrap_or_default(),
        tip.profile()
            .dominant_state(tip_top)
            .map(|s| s.name())
            .unwrap_or("?"),
    );
    let run = profile_all_schemes(&program, HARNESS_INTERVAL, HARNESS_SEED);
    let total = run.golden.pics().total();

    println!("--- (a) golden reference, top 4 instructions ---");
    print!(
        "{}",
        render_top_instructions(run.golden.pics(), &program, 4)
    );
    println!("--- (a) TEA, top 4 instructions ---");
    print!(
        "{}",
        render_top_instructions(&run.pics[&Scheme::Tea].scaled_to(total), &program, 4)
    );
    println!("--- (b) IBS, top 4 instructions ---");
    print!(
        "{}",
        render_top_instructions(&run.pics[&Scheme::Ibs].scaled_to(total), &program, 4)
    );

    let critical = lbm::critical_load_addr(size, 0);
    let g_share = run.golden.pics().instruction_total(critical) / total;
    let t_share = run.pics[&Scheme::Tea]
        .scaled_to(total)
        .instruction_total(critical)
        / total;
    let i_share = run.pics[&Scheme::Ibs]
        .scaled_to(total)
        .instruction_total(critical)
        / total;
    println!("\ncritical load {critical:#x} share of execution time:");
    println!(
        "  GR {:.1}%   TEA {:.1}%   IBS {:.1}%",
        g_share * 100.0,
        t_share * 100.0,
        i_share * 100.0
    );
    println!("\nExpected shape: GR and TEA put the same dominant ST-L1+ST-LLC stack on the");
    println!("critical load; IBS scatters the time over dispatch-neighbour instructions.");
}
