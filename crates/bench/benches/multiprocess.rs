//! Extension experiment (Section 3's per-process claim): two processes
//! time-share the core and the memory hierarchy; TEA observers attached
//! per process still build each process's own PICS, which identify the
//! same critical instructions as solo golden runs — while the shared
//! LLC/DRAM state makes the co-run measurably slower.

use tea_bench::size_from_env;
use tea_core::golden::GoldenReference;
use tea_core::sampling::SampleTimer;
use tea_core::tea::TeaProfiler;
use tea_sim::core::simulate;
use tea_sim::system::System;
use tea_sim::trace::Observer;
use tea_sim::SimConfig;
use tea_workloads::{exchange2, lbm};

fn main() {
    let size = size_from_env();
    println!("=== Multiprogramming: per-process PICS on a shared core ===\n");
    let prog_a = lbm::program(size);
    let prog_b = exchange2::program(size);
    let cfg = SimConfig::default();

    // Solo golden references for ground truth.
    let mut solo_a = GoldenReference::new();
    let solo_a_stats = simulate(&prog_a, cfg.clone(), &mut [&mut solo_a]);
    let mut solo_b = GoldenReference::new();
    let solo_b_stats = simulate(&prog_b, cfg.clone(), &mut [&mut solo_b]);

    // Co-scheduled run with per-process TEA + golden observers.
    let mut sys = System::new(&[&prog_a, &prog_b], &cfg, 20_000, 100);
    let mut tea_a = TeaProfiler::new(SampleTimer::with_jitter(512, 64, 21));
    let mut tea_b = TeaProfiler::new(SampleTimer::with_jitter(512, 64, 22));
    let mut gold_a = GoldenReference::new();
    let mut gold_b = GoldenReference::new();
    while let Some(pid) = sys.next_runnable() {
        if pid == 0 {
            let mut obs: Vec<&mut dyn Observer> = vec![&mut tea_a, &mut gold_a];
            sys.run_slice(0, &mut obs);
        } else {
            let mut obs: Vec<&mut dyn Observer> = vec![&mut tea_b, &mut gold_b];
            sys.run_slice(1, &mut obs);
        }
    }
    let co_a = sys.stats(0);
    let co_b = sys.stats(1);
    println!(
        "lbm:       solo {:>9} cycles, co-run {:>9} (slowdown {:.2}x)",
        solo_a_stats.cycles,
        co_a.cycles,
        co_a.cycles as f64 / solo_a_stats.cycles as f64
    );
    println!(
        "exchange2: solo {:>9} cycles, co-run {:>9} (slowdown {:.2}x)",
        solo_b_stats.cycles,
        co_b.cycles,
        co_b.cycles as f64 / solo_b_stats.cycles as f64
    );
    println!("global clock: {} cycles\n", sys.global_clock());

    for (name, tea, solo, program) in [
        ("lbm", &tea_a, &solo_a, &prog_a),
        ("exchange2", &tea_b, &solo_b, &prog_b),
    ] {
        let co_top = tea.pics().top_instructions(1)[0].0;
        let solo_top = solo.pics().top_instructions(1)[0].0;
        let inst = program
            .inst_at(co_top)
            .map(|i| i.to_string())
            .unwrap_or_default();
        println!(
            "{name:<10} per-process TEA top instruction {co_top:#x} ({inst}); solo golden top {solo_top:#x} — {}",
            if co_top == solo_top { "MATCH" } else { "differs (interference shifted the bottleneck)" }
        );
    }
    println!("\nExpected shape: each process's PICS remain attributable under");
    println!("multiprogramming; shared-cache interference slows both processes.");
}
