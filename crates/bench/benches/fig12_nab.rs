//! Figure 12: nab performance analysis — TEA shows that `fsqrt.d` is
//! performance-critical *without* being subjected to any event: the
//! preceding `frflags`/`fsflags` flush the pipeline (FL-EX), so the
//! unpipelined square root issues too late to hide its latency.
//! Relaxing IEEE 754 compliance removes the flushes: the paper reports
//! 1.96x (-ffinite-math-only) and 2.45x (-ffast-math).

use tea_bench::{profile_all_schemes, size_from_env, HARNESS_INTERVAL, HARNESS_SEED};
use tea_core::render::render_top_instructions;
use tea_core::schemes::Scheme;
use tea_sim::core::simulate;
use tea_sim::SimConfig;
use tea_workloads::nab::{self, MathMode};

fn main() {
    let size = size_from_env();
    println!("=== Figure 12: nab — TEA vs IBS vs golden reference, plus the fix ===\n");
    let program = nab::program(size);
    let run = profile_all_schemes(&program, HARNESS_INTERVAL, HARNESS_SEED);
    let total = run.golden.pics().total();

    println!("--- (a) golden reference, top 5 instructions ---");
    print!(
        "{}",
        render_top_instructions(run.golden.pics(), &program, 5)
    );
    println!("--- (a) TEA, top 5 instructions ---");
    print!(
        "{}",
        render_top_instructions(&run.pics[&Scheme::Tea].scaled_to(total), &program, 5)
    );
    println!("--- (b) IBS, top 5 instructions ---");
    print!(
        "{}",
        render_top_instructions(&run.pics[&Scheme::Ibs].scaled_to(total), &program, 5)
    );

    let fsqrt = nab::fsqrt_addr(size, MathMode::Ieee).expect("ieee build has fsqrt.d");
    println!("\nfsqrt.d at {fsqrt:#x}: share of execution time");
    println!(
        "  GR {:.1}%   TEA {:.1}%   IBS {:.1}%",
        run.golden.pics().instruction_total(fsqrt) / total * 100.0,
        run.pics[&Scheme::Tea]
            .scaled_to(total)
            .instruction_total(fsqrt)
            / total
            * 100.0,
        run.pics[&Scheme::Ibs]
            .scaled_to(total)
            .instruction_total(fsqrt)
            / total
            * 100.0,
    );

    println!("\n--- the fix: relaxing IEEE 754 compliance ---");
    let ieee = simulate(
        &nab::program_with_mode(size, MathMode::Ieee),
        SimConfig::default(),
        &mut [],
    );
    for mode in [MathMode::FiniteMath, MathMode::FastMath] {
        let s = simulate(
            &nab::program_with_mode(size, mode),
            SimConfig::default(),
            &mut [],
        );
        println!(
            "  {:<12} {:>9} cycles  speedup {:.2}x  (flushes {} -> {})",
            mode.name(),
            s.cycles,
            ieee.cycles as f64 / s.cycles as f64,
            ieee.commit_flushes,
            s.commit_flushes
        );
    }
    println!("\nExpected shape: GR/TEA attribute the fsqrt.d time (mostly Base — no events,");
    println!("caused by the FL-EX flushes of fsflags/frflags); IBS does not. Removing the");
    println!("flushes yields ~2x, fast-math more (paper: 1.96x / 2.45x).");
}
