//! Figure 7: Pearson correlation between per-instruction event counts
//! and the events' impact on performance (cycle-stack components),
//! per event across all benchmarks — the quantified case against
//! event-driven (counter-based) performance analysis.
//!
//! Expected shape: the flush events (FL-MB, FL-EX, FL-MO) correlate
//! strongly (flushes are rarely hidden); TLB and cache misses only
//! moderately, with ST-LLC above ST-L1 (L1 misses hide more easily);
//! DR-SQ weakest with the largest spread.

use tea_bench::{size_from_env, HARNESS_SEED};
use tea_core::correlation::{all_event_correlations, BoxStats};
use tea_core::golden::GoldenReference;
use tea_core::render::render_box;
use tea_sim::core::simulate;
use tea_sim::psv::Event;
use tea_sim::SimConfig;
use tea_workloads::all_workloads;

fn main() {
    let size = size_from_env();
    println!("=== Figure 7: event count vs performance impact (Pearson r) ===\n");
    let mut per_event: Vec<Vec<f64>> = vec![Vec::new(); 9];
    for w in all_workloads(size) {
        let mut golden = GoldenReference::new();
        simulate(&w.program, SimConfig::default(), &mut [&mut golden]);
        let rs = all_event_correlations(&golden);
        for (i, r) in rs.into_iter().enumerate() {
            if let Some(r) = r {
                per_event[i].push(r);
            }
        }
        let _ = HARNESS_SEED;
    }
    println!(
        "{:<8} {:>6} {:>26} {:>6}   (n benchmarks)",
        "event", "min", "q1 | median | q3", "max"
    );
    for (i, e) in Event::ALL.into_iter().enumerate() {
        println!(
            "{}   (n={})",
            render_box(e.name(), BoxStats::of(&per_event[i])),
            per_event[i].len()
        );
    }
    println!("\nExpected shape: FL-* strongly correlated; ST-LLC > ST-L1; DR-SQ weakest/widest.");
}
