//! Figure 8: PICS error versus sampling frequency.
//!
//! The paper sweeps the PMU sampling frequency and finds accuracy
//! insensitive above ~4 kHz, which justifies 4 kHz as the default. We
//! sweep the scaled sampling interval around the 512-cycle
//! "4 kHz-equivalent" by the same power-of-two factors: longer
//! intervals (lower frequency) cost accuracy, shorter ones saturate.

use tea_bench::{profile_suite, size_from_env};
use tea_core::pics::Granularity;
use tea_core::schemes::Scheme;

fn main() {
    let size = size_from_env();
    println!("=== Figure 8: error vs sampling frequency (interval sweep) ===\n");
    let schemes = [Scheme::Ibs, Scheme::Ris, Scheme::NciTea, Scheme::Tea];
    println!(
        "{:<22} {:>7} {:>7} {:>7} {:>7}",
        "interval (freq equiv)", "IBS", "RIS", "NCI-TEA", "TEA"
    );
    for (interval, label) in [
        (4096u64, "0.5 kHz-equiv"),
        (2048, "1 kHz-equiv"),
        (1024, "2 kHz-equiv"),
        (512, "4 kHz-equiv"),
        (256, "8 kHz-equiv"),
        (128, "16 kHz-equiv"),
    ] {
        let suite = profile_suite(size, interval);
        let mut sums = [0.0f64; 4];
        for (w, run) in &suite {
            for (i, s) in schemes.iter().enumerate() {
                sums[i] += run.error(*s, &w.program, Granularity::Instruction);
            }
        }
        let n = suite.len() as f64;
        println!(
            "{:<22} {:>7.1} {:>7.1} {:>7.1} {:>7.1}",
            format!("{interval} ({label})"),
            sums[0] / n * 100.0,
            sums[1] / n * 100.0,
            sums[2] / n * 100.0,
            sums[3] / n * 100.0
        );
    }
    println!("\nExpected shape: error flattens at and above the 4 kHz-equivalent; the");
    println!("scheme ordering (TEA < NCI-TEA < IBS/RIS) holds at every frequency.");
}
