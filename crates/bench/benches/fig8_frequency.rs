//! Figure 8: PICS error versus sampling frequency.
//!
//! The paper sweeps the PMU sampling frequency and finds accuracy
//! insensitive above ~4 kHz, which justifies 4 kHz as the default. We
//! sweep the scaled sampling interval around the 512-cycle
//! "4 kHz-equivalent" by the same power-of-two factors: longer
//! intervals (lower frequency) cost accuracy, shorter ones saturate.
//!
//! The (workload × interval) matrix runs through the experiment engine
//! as one flat fan-out rather than one suite pass per interval.

use tea_bench::{size_from_env, HARNESS_SEED};
use tea_core::pics::Granularity;
use tea_core::schemes::Scheme;
use tea_exp::{Engine, Matrix};
use tea_workloads::all_workloads;

fn main() {
    let size = size_from_env();
    println!("=== Figure 8: error vs sampling frequency (interval sweep) ===\n");
    let schemes = [Scheme::Ibs, Scheme::Ris, Scheme::NciTea, Scheme::Tea];
    let sweep = [
        (4096u64, "0.5 kHz-equiv"),
        (2048, "1 kHz-equiv"),
        (1024, "2 kHz-equiv"),
        (512, "4 kHz-equiv"),
        (256, "8 kHz-equiv"),
        (128, "16 kHz-equiv"),
    ];
    let intervals: Vec<u64> = sweep.iter().map(|&(i, _)| i).collect();

    let workloads = all_workloads(size);
    let n = workloads.len() as f64;
    let matrix = Matrix::new()
        .workloads(workloads)
        .intervals(&intervals)
        .seeds(&[HARNESS_SEED]);
    let run = Engine::from_env().run("fig8-frequency", matrix.cells());

    println!(
        "{:<22} {:>7} {:>7} {:>7} {:>7}",
        "interval (freq equiv)", "IBS", "RIS", "NCI-TEA", "TEA"
    );
    for (interval, label) in sweep {
        let mut sums = [0.0f64; 4];
        for cell in run.cells.iter().filter(|c| c.spec.interval == interval) {
            let cell = cell.result().expect("figure cells must complete");
            for (i, s) in schemes.iter().enumerate() {
                sums[i] += cell
                    .error(*s, Granularity::Instruction)
                    .expect("golden attached");
            }
        }
        println!(
            "{:<22} {:>7.1} {:>7.1} {:>7.1} {:>7.1}",
            format!("{interval} ({label})"),
            sums[0] / n * 100.0,
            sums[1] / n * 100.0,
            sums[2] / n * 100.0,
            sums[3] / n * 100.0
        );
    }
    println!("\nExpected shape: error flattens at and above the 4 kHz-equivalent; the");
    println!("scheme ordering (TEA < NCI-TEA < IBS/RIS) holds at every frequency.");
    let _ = run.write_artifact();
}
