//! Figure 11: lbm prefetch-distance sweep — PICS of the most
//! performance-critical load and store instruction at each software
//! prefetch distance, plus the speedup line.
//!
//! The paper's mechanism: as the prefetch distance grows, the load's
//! ST-LLC time collapses (LLC hits remain as ST-L1), throughput rises,
//! and the bottleneck moves to store bandwidth — the store instruction's
//! DR-SQ categories grow. The optimum balances the two (paper: distance
//! 3, 1.28x).

use tea_bench::size_from_env;
use tea_core::golden::GoldenReference;
use tea_core::render::render_bar;
use tea_sim::core::simulate;
use tea_sim::psv::Event;
use tea_sim::SimConfig;
use tea_workloads::lbm;

fn main() {
    let size = size_from_env();
    println!("=== Figure 11: lbm software-prefetch distance sweep ===\n");
    let mut base_cycles = 0u64;
    println!(
        "{:<9} {:>10} {:>8}  {:>7} {:>7} {:>7}  {:>7} {:>7}   speedup",
        "distance", "cycles", "speedup", "ld%tot", "ld:LLC", "ld:L1", "st%tot", "st:DRSQ"
    );
    for distance in 0..=6u64 {
        let program = lbm::program_with_prefetch(size, distance);
        let mut golden = GoldenReference::new();
        let stats = simulate(&program, SimConfig::default(), &mut [&mut golden]);
        if distance == 0 {
            base_cycles = stats.cycles;
        }
        let total = golden.pics().total();
        // "The most performance-critical load and store instructions":
        // pick them from the golden profile, as the paper's Figure 11
        // does at every distance.
        let hottest = |mnemonic: &str| {
            program
                .iter()
                .filter(|(_, i)| i.mnemonic() == mnemonic)
                .map(|(a, _)| a)
                .max_by(|&a, &b| {
                    golden
                        .pics()
                        .instruction_total(a)
                        .partial_cmp(&golden.pics().instruction_total(b))
                        .unwrap()
                })
                .expect("kernel has loads and stores")
        };
        let load = hottest("fld");
        let store = hottest("fsd");
        let comp = |addr: u64, pred: &dyn Fn(tea_sim::psv::Psv) -> bool| -> f64 {
            golden.pics().stack(addr).map_or(0.0, |s| {
                s.iter().filter(|(p, _)| pred(**p)).map(|(_, c)| *c).sum()
            }) / total
        };
        let ld_total = golden.pics().instruction_total(load) / total;
        let ld_llc = comp(load, &|p| p.contains(Event::StLlc));
        let ld_l1 = comp(load, &|p| {
            p.contains(Event::StL1) && !p.contains(Event::StLlc)
        });
        let st_total = golden.pics().instruction_total(store) / total;
        let st_drsq = comp(store, &|p| p.contains(Event::DrSq));
        let speedup = base_cycles as f64 / stats.cycles as f64;
        println!(
            "{:<9} {:>10} {:>8.3}  {:>6.1}% {:>6.1}% {:>6.1}%  {:>6.1}% {:>6.1}%   {}",
            distance,
            stats.cycles,
            speedup,
            ld_total * 100.0,
            ld_llc * 100.0,
            ld_l1 * 100.0,
            st_total * 100.0,
            st_drsq * 100.0,
            render_bar((speedup - 1.0) / 0.5, 20)
        );
    }
    println!("\nColumns: critical-load share of time and its ST-LLC / LLC-hit (ST-L1 only)");
    println!("components; critical-store share and its DR-SQ component.");
    println!("Expected shape: load ST-LLC time collapses with distance and saturates;");
    println!("store-side DR-SQ share grows; the speedup peaks at an intermediate");
    println!("distance (paper: 3, 1.28x).");
}
