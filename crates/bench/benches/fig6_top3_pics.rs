//! Figure 6: PICS for the top-3 instructions of bwaves, omnetpp,
//! fotonik3d and exchange2 as provided by IBS, TEA and the golden
//! reference (GR).
//!
//! The figure's two findings: (i) IBS's stack heights are wrong because
//! it is not time-proportional, and (ii) its components are wrong
//! because of signature misattribution. TEA's stacks track GR closely,
//! including *combined* events — bwaves' top instructions mix cache and
//! TLB misses, fotonik3d's are cache-only.

use tea_bench::{profile_all_schemes, size_from_env, HARNESS_INTERVAL, HARNESS_SEED};
use tea_core::pics::Pics;
use tea_core::schemes::Scheme;
use tea_sim::psv::Psv;
use tea_workloads::fig6_workloads;

fn stack_line(pics: &Pics, addr: u64, total: f64) -> String {
    let mut comps: Vec<(Psv, f64)> = pics
        .stack(addr)
        .map(|s| s.iter().map(|(&p, &c)| (p, c)).collect())
        .unwrap_or_default();
    comps.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    let mut out = format!("{:6.2}% = ", 100.0 * pics.instruction_total(addr) / total);
    for (i, (psv, c)) in comps.iter().take(4).enumerate() {
        if *c / total < 0.0005 {
            break;
        }
        if i > 0 {
            out.push_str(" + ");
        }
        out.push_str(&format!("{:.2}% {}", 100.0 * c / total, psv));
    }
    out
}

fn main() {
    let size = size_from_env();
    println!("=== Figure 6: top-3 instruction PICS — IBS vs TEA vs golden reference ===\n");
    for w in fig6_workloads(size) {
        let run = profile_all_schemes(&w.program, HARNESS_INTERVAL, HARNESS_SEED);
        let golden = run.golden.pics();
        let total = golden.total();
        let tea = run.pics[&Scheme::Tea].scaled_to(total);
        let ibs = run.pics[&Scheme::Ibs].scaled_to(total);
        println!("--- {} ---", w.name);
        for (rank, (addr, _)) in golden.top_instructions(3).into_iter().enumerate() {
            let inst = w
                .program
                .inst_at(addr)
                .map(|i| i.to_string())
                .unwrap_or_default();
            println!("  #{} {:#x}  {}", rank + 1, addr, inst);
            println!("     GR : {}", stack_line(golden, addr, total));
            println!("     TEA: {}", stack_line(&tea, addr, total));
            println!("     IBS: {}", stack_line(&ibs, addr, total));
        }
        // What IBS itself would show the developer instead.
        let (ibs_top, _) = ibs.top_instructions(1)[0];
        println!(
            "  IBS's own #1: {:#x} {}  ({}) — GR gives it {:.2}%",
            ibs_top,
            w.program
                .inst_at(ibs_top)
                .map(|i| i.to_string())
                .unwrap_or_default(),
            stack_line(&ibs, ibs_top, total).trim(),
            100.0 * golden.instruction_total(ibs_top) / total
        );
        println!();
    }
    println!("Expected shape: TEA's heights and components track GR; IBS's do not.");
    println!("bwaves/omnetpp tops carry combined cache+TLB events; fotonik3d is cache-only.");
}
