//! Extension experiment: TEA on a chip multiprocessor. One TEA unit per
//! physical core (as the paper requires) profiles two co-running
//! workloads that share the LLC and DRAM. TEA's PICS do not just show
//! *that* each program got slower — they show *why*: the victim's
//! ST-LLC components grow as the neighbour's working set evicts its
//! lines.

use tea_bench::size_from_env;
use tea_core::golden::GoldenReference;
use tea_sim::cmp::CmpSystem;
use tea_sim::core::simulate;
use tea_sim::psv::Event;
use tea_sim::trace::Observer;
use tea_sim::SimConfig;
use tea_workloads::{lbm, xz};

fn llc_component_share(g: &GoldenReference) -> f64 {
    let total = g.pics().total().max(1e-12);
    g.pics()
        .iter()
        .flat_map(|(_, st)| st.iter())
        .filter(|(p, _)| p.contains(Event::StLlc))
        .map(|(_, c)| *c)
        .sum::<f64>()
        / total
}

fn main() {
    let size = size_from_env();
    // Two DRAM-hungry workloads: lbm streams ~5 lines per iteration and
    // xz misses the LLC on most probes — together they saturate the
    // shared DRAM bandwidth and evict each other's LLC lines.
    let prog_a = lbm::program(size);
    let prog_b = xz::program(size);
    let cfg = SimConfig::default();
    println!("=== CMP interference: per-core TEA under a shared LLC ===\n");

    let mut solo_a = GoldenReference::new();
    let sa = simulate(&prog_a, cfg.clone(), &mut [&mut solo_a]);
    let mut solo_b = GoldenReference::new();
    let sb = simulate(&prog_b, cfg.clone(), &mut [&mut solo_b]);

    let mut cmp = CmpSystem::new(&[&prog_a, &prog_b], &cfg);
    let mut co_a = GoldenReference::new();
    let mut co_b = GoldenReference::new();
    {
        let mut obs: Vec<Vec<&mut dyn Observer>> = vec![vec![&mut co_a], vec![&mut co_b]];
        cmp.run(&mut obs, 1_000_000_000);
    }
    let ca = cmp.stats(0);
    let cb = cmp.stats(1);
    println!(
        "{:<11} {:>12} {:>12} {:>9}   {:>14} {:>14}",
        "core", "solo cycles", "co cycles", "slowdown", "solo ST-LLC%", "co ST-LLC%"
    );
    for (name, solo_stats, co_stats, solo_g, co_g) in [
        ("lbm", &sa, &ca, &solo_a, &co_a),
        ("xz", &sb, &cb, &solo_b, &co_b),
    ] {
        println!(
            "{:<11} {:>12} {:>12} {:>8.2}x   {:>13.2}% {:>13.2}%",
            name,
            solo_stats.cycles,
            co_stats.cycles,
            co_stats.cycles as f64 / solo_stats.cycles as f64,
            llc_component_share(solo_g) * 100.0,
            llc_component_share(co_g) * 100.0
        );
    }
    let shared = cmp.shared_stats();
    println!(
        "\nshared LLC: {} accesses, {} misses; DRAM lines {}",
        shared.llc_accesses, shared.llc_misses, shared.dram_lines
    );
    println!("\nExpected shape: both cores slow down; the cause is visible in the");
    println!("per-core PICS as ST-LLC components (each miss now also queues behind the");
    println!("neighbour's DRAM traffic, so the same signatures carry more cycles). One");
    println!("TEA unit per core keeps the profiles fully separated.");
}
