//! Criterion microbenchmark of the core's event-queue implementations:
//! the calendar (bucket-wheel) queue that now backs the completion and
//! ready queues versus the `BinaryHeap<Reverse<Entry>>` it replaced.
//!
//! The workload reproduces the simulator's access pattern rather than a
//! synthetic priority-queue storm: the clock advances one cycle at a
//! time, each cycle pushes a small burst of completions whose delays
//! follow the timing model's latency mix (mostly short ALU/forwarding
//! latencies, a thin tail of memory-hierarchy misses), and every due
//! entry is popped before the next advance. Occupancy therefore hovers
//! at the small steady-state the real core sees (tens of entries, not
//! thousands), which is exactly the regime the calendar queue targets.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use tea_sim::queue::CalendarQueue;

/// `(cycle, seq, idx, gen)` — the tuple both queues order on.
type Entry = (u64, u64, u32, u32);

/// Wheel size matching `wheel_cycles(&SimConfig::default())`.
const WHEEL: u64 = 512;

/// Deterministic splitmix64 stream so both queues replay the identical
/// event script (no RNG state shared across iterations).
fn splitmix64(state: &mut u64) {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
}

fn mix(state: u64) -> u64 {
    let mut z = state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One simulated cycle's pushes: `(delay, idx, gen)` triples. The delay
/// mix mirrors the timing model: ~70% short unit latencies (1..=5),
/// ~25% cache-hit latencies (8..=40), ~5% memory misses (200..=400,
/// occasionally past the wheel horizon to exercise the overflow tier).
fn script(cycles: u64, pushes_per_cycle: usize, seed: u64) -> Vec<Vec<(u64, u32, u32)>> {
    let mut state = seed;
    (0..cycles)
        .map(|_| {
            let mut burst = Vec::with_capacity(pushes_per_cycle);
            for _ in 0..pushes_per_cycle {
                splitmix64(&mut state);
                let r = mix(state);
                let pct = r % 100;
                let delay = if pct < 70 {
                    1 + (r >> 8) % 5
                } else if pct < 95 {
                    8 + (r >> 8) % 33
                } else {
                    200 + (r >> 8) % 400
                };
                burst.push((delay, (r >> 40) as u32 & 0xffff, (r >> 56) as u32 & 0x7));
            }
            burst
        })
        .collect()
}

/// Drives the calendar queue through the script; returns pops (so the
/// work can't be optimized out and both queues can be cross-checked).
fn run_calendar(script: &[Vec<(u64, u32, u32)>]) -> u64 {
    let mut q = CalendarQueue::new(WHEEL);
    let mut seq = 0u64;
    let mut pops = 0u64;
    for (now, burst) in script.iter().enumerate() {
        let now = now as u64 + 1;
        for &(delay, idx, gen) in burst {
            q.push(now + delay, seq, idx, gen);
            seq += 1;
        }
        q.advance(now);
        while q.pop_due().is_some() {
            pops += 1;
        }
    }
    // Drain the tail so every push is matched by a pop.
    q.advance(u64::MAX);
    while q.pop_due().is_some() {
        pops += 1;
    }
    pops
}

/// The replaced implementation, for the before/after comparison.
fn run_heap(script: &[Vec<(u64, u32, u32)>]) -> u64 {
    let mut q: BinaryHeap<Reverse<Entry>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut pops = 0u64;
    for (now, burst) in script.iter().enumerate() {
        let now = now as u64 + 1;
        for &(delay, idx, gen) in burst {
            q.push(Reverse((now + delay, seq, idx, gen)));
            seq += 1;
        }
        while q.peek().is_some_and(|&Reverse((c, ..))| c <= now) {
            q.pop();
            pops += 1;
        }
    }
    while q.pop().is_some() {
        pops += 1;
    }
    pops
}

fn bench_event_queue(c: &mut Criterion) {
    const CYCLES: u64 = 20_000;
    // Steady-state occupancy scales with pushes/cycle × mean delay:
    // 2/cycle ≈ the default 2-wide issue machine; 6/cycle models a
    // squash-heavy or wider configuration.
    for pushes in [2usize, 6] {
        let s = script(CYCLES, pushes, 0x7ea);
        let ops = CYCLES * pushes as u64 * 2; // each entry: 1 push + 1 pop
        assert_eq!(
            run_calendar(&s),
            run_heap(&s),
            "queues must agree on pop count"
        );
        let mut g = c.benchmark_group(format!("event_queue/{pushes}_per_cycle"));
        g.throughput(Throughput::Elements(ops));
        g.bench_function("calendar", |b| b.iter(|| run_calendar(&s)));
        g.bench_function("heap", |b| b.iter(|| run_heap(&s)));
        g.finish();
    }
}

criterion_group!(benches, bench_event_queue);
criterion_main!(benches);
