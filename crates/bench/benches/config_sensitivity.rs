//! Robustness study: TEA's accuracy advantage must not be an artefact of
//! one core configuration. The paper implements TEA in one BOOM config
//! (Table 2) and argues the approach generalises ("the approach will be
//! similar for other microarchitectures"); here we re-run the Figure 5
//! comparison on a little (2-wide, 48-ROB), the default (4-wide,
//! 192-ROB), and a big (8-wide, 320-ROB) core.

use tea_bench::{profile_all_schemes_with, size_from_env, HARNESS_INTERVAL, HARNESS_SEED};
use tea_core::pics::Granularity;
use tea_core::schemes::Scheme;
use tea_sim::SimConfig;
use tea_workloads::all_workloads;

fn main() {
    let size = size_from_env();
    let subset = ["lbm", "nab", "omnetpp", "exchange2", "mcf", "xz"];
    let workloads: Vec<_> = all_workloads(size)
        .into_iter()
        .filter(|w| subset.contains(&w.name))
        .collect();
    println!("=== TEA vs IBS across core configurations (avg error over 6 workloads) ===\n");
    println!("{:<26} {:>8} {:>8} {:>8}", "core", "IBS", "NCI-TEA", "TEA");
    for (name, cfg) in [
        ("little (2-wide, 48 ROB)", SimConfig::little()),
        ("default (4-wide, 192 ROB)", SimConfig::default()),
        ("big (8-wide, 320 ROB)", SimConfig::big()),
    ] {
        let mut sums = [0.0f64; 3];
        for w in &workloads {
            let run = profile_all_schemes_with(&w.program, HARNESS_INTERVAL, HARNESS_SEED, &cfg);
            for (i, s) in [Scheme::Ibs, Scheme::NciTea, Scheme::Tea].iter().enumerate() {
                sums[i] += run.error(*s, &w.program, Granularity::Instruction);
            }
        }
        let n = workloads.len() as f64;
        println!(
            "{:<26} {:>7.1} {:>8.1} {:>8.1}",
            name,
            sums[0] / n * 100.0,
            sums[1] / n * 100.0,
            sums[2] / n * 100.0
        );
    }
    println!("\nExpected shape: TEA stays in the low single digits on every core; the");
    println!("front-end-tagging error is structural on all of them.");
}
