//! Robustness study: TEA's accuracy advantage must not be an artefact of
//! one core configuration. The paper implements TEA in one BOOM config
//! (Table 2) and argues the approach generalises ("the approach will be
//! similar for other microarchitectures"); here we re-run the Figure 5
//! comparison on a little (2-wide, 48-ROB), the default (4-wide,
//! 192-ROB), and a big (8-wide, 320-ROB) core.
//!
//! The (workload × config) matrix runs through the experiment engine.

use tea_bench::{size_from_env, HARNESS_INTERVAL, HARNESS_SEED};
use tea_core::pics::Granularity;
use tea_core::schemes::Scheme;
use tea_exp::{Engine, Matrix};
use tea_sim::SimConfig;
use tea_workloads::all_workloads;

fn main() {
    let size = size_from_env();
    let subset = ["lbm", "nab", "omnetpp", "exchange2", "mcf", "xz"];
    let workloads: Vec<_> = all_workloads(size)
        .into_iter()
        .filter(|w| subset.contains(&w.name))
        .collect();
    let configs = [
        ("little (2-wide, 48 ROB)", SimConfig::little()),
        ("default (4-wide, 192 ROB)", SimConfig::default()),
        ("big (8-wide, 320 ROB)", SimConfig::big()),
    ];

    let matrix = Matrix::new()
        .workloads(workloads.clone())
        .configs(configs.to_vec())
        .intervals(&[HARNESS_INTERVAL])
        .seeds(&[HARNESS_SEED]);
    let run = Engine::from_env().run("config-sensitivity", matrix.cells());

    println!("=== TEA vs IBS across core configurations (avg error over 6 workloads) ===\n");
    println!("{:<26} {:>8} {:>8} {:>8}", "core", "IBS", "NCI-TEA", "TEA");
    // Matrix order is workload-major with configs inside each workload;
    // aggregate by config name.
    for (name, _) in &configs {
        let mut sums = [0.0f64; 3];
        let cells = run.cells.iter().filter(|c| c.spec.config_name == *name);
        let mut n = 0usize;
        for cell in cells {
            let cell = cell.result().expect("figure cells must complete");
            for (i, s) in [Scheme::Ibs, Scheme::NciTea, Scheme::Tea]
                .iter()
                .enumerate()
            {
                sums[i] += cell
                    .error(*s, Granularity::Instruction)
                    .expect("golden attached");
            }
            n += 1;
        }
        let n = n as f64;
        println!(
            "{:<26} {:>7.1} {:>8.1} {:>8.1}",
            name,
            sums[0] / n * 100.0,
            sums[1] / n * 100.0,
            sums[2] / n * 100.0
        );
    }
    println!("\nExpected shape: TEA stays in the low single digits on every core; the");
    println!("front-end-tagging error is structural on all of them.");
    let _ = run.write_artifact();
}
