//! Table 2: the baseline architecture configuration.

use tea_sim::SimConfig;

fn main() {
    println!("=== Table 2: baseline architecture configuration ===\n");
    let cfg = SimConfig::default();
    cfg.validate().expect("Table 2 config is valid");
    print!("{}", cfg.table2());
    println!("\nMatches the paper's BOOM configuration (Table 2); timing-only parameters");
    println!("(FU latencies, DRAM latency, redirect penalties) are the simulator's");
    println!("calibrated equivalents, documented in DESIGN.md.");
}
