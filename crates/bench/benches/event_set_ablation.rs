//! Figure 3 / Section 3's event-selection tradeoff, quantified: how much
//! of the non-compute time does each nested PSV event subset explain?
//!
//! TEA must track its events for *all* in-flight instructions, so every
//! extra event costs storage in the fetch buffer/ROB/LSU. The paper
//! exploits the event hierarchy to pick nine events such that 99 % of
//! remaining eventless commit stalls are < 5.8 cycles. This harness
//! walks nested subsets of the hierarchy and reports, per subset, the
//! fraction of attributed non-Base time that would be lost (cycles whose
//! signature becomes empty under the mask) and the subset's storage
//! cost.

use tea_bench::size_from_env;
use tea_core::golden::GoldenReference;
use tea_sim::core::simulate;
use tea_sim::psv::{Event, Psv};
use tea_sim::SimConfig;
use tea_workloads::all_workloads;

fn main() {
    let size = size_from_env();
    println!("=== Event-set ablation: explained time vs PSV width (Figure 3's tradeoff) ===\n");
    // Nested subsets following the hierarchy: stall roots first, then
    // dependents, then drain/flush causes.
    let subsets: [(&str, &[Event]); 6] = [
        ("1 (ST-L1)", &[Event::StL1]),
        ("2 (+ST-TLB)", &[Event::StL1, Event::StTlb]),
        ("3 (+ST-LLC)", &[Event::StL1, Event::StTlb, Event::StLlc]),
        (
            "5 (+DR-L1,DR-TLB)",
            &[
                Event::StL1,
                Event::StTlb,
                Event::StLlc,
                Event::DrL1,
                Event::DrTlb,
            ],
        ),
        (
            "7 (+FL-MB,FL-EX)",
            &[
                Event::StL1,
                Event::StTlb,
                Event::StLlc,
                Event::DrL1,
                Event::DrTlb,
                Event::FlMb,
                Event::FlEx,
            ],
        ),
        ("9 (full TEA)", &Event::ALL),
    ];
    // One golden pass per workload; masks are applied offline.
    let goldens: Vec<_> = all_workloads(size)
        .into_iter()
        .map(|w| {
            let mut g = GoldenReference::new();
            simulate(&w.program, SimConfig::default(), &mut [&mut g]);
            (w, g)
        })
        .collect();
    let eventful_total: f64 = goldens
        .iter()
        .map(|(_, g)| {
            g.pics()
                .iter()
                .flat_map(|(_, st)| st.iter())
                .filter(|(p, _)| !p.is_empty())
                .map(|(_, c)| *c)
                .sum::<f64>()
        })
        .sum();
    println!(
        "{:<20} {:>10} {:>22} {:>18}",
        "event set", "PSV bits", "explained time kept", "ROB+FB storage (B)"
    );
    for (label, events) in subsets {
        let mask: Psv = events.iter().copied().collect();
        let mut kept = 0.0;
        for (_, g) in &goldens {
            kept += g
                .pics()
                .iter()
                .flat_map(|(_, st)| st.iter())
                .filter(|(p, _)| !p.masked(mask).is_empty())
                .map(|(_, c)| *c)
                .sum::<f64>();
        }
        let bits = mask.count() as u64;
        // Storage scales with PSV width: fetch-buffer bits only for the
        // two front-end events, ROB bits for all.
        let fe_bits =
            u64::from(mask.contains(Event::DrL1)) + u64::from(mask.contains(Event::DrTlb));
        let cfg = SimConfig::default();
        let storage_bits = fe_bits * cfg.fetch_buffer as u64 + bits * cfg.rob_entries as u64;
        println!(
            "{:<20} {:>10} {:>20.1}% {:>18}",
            label,
            bits,
            kept / eventful_total * 100.0,
            storage_bits.div_ceil(8)
        );
    }
    println!("\nExpected shape: diminishing returns — the first few events explain most");
    println!("eventful time; the full nine-event set buys complete coverage (the paper's");
    println!("99% of residual stalls < 5.8 cycles) for ~230 B of ROB+fetch-buffer state.");
}
