//! Offline stand-in for the `fxhash` / `rustc-hash` crates.
//!
//! This workspace builds in environments without network access or a
//! crates.io registry mirror, so the hasher used on the attribution hot
//! path is vendored here. It implements the Fx hash function — the
//! multiply-and-rotate word hash the Rust compiler uses for its
//! internal tables — which is dramatically cheaper than std's
//! SipHash-1-3 for the small integer keys (instruction addresses,
//! sequence numbers) that dominate the profilers' maps, at the cost of
//! DoS resistance this workload does not need.
//!
//! Unlike `std::collections::HashMap`'s default `RandomState`, the
//! hasher is deterministic: a map built from the same insertion
//! sequence iterates in the same order in every process. Nothing in the
//! workspace *relies* on that (all artifact paths fold in explicitly
//! sorted order), but it removes a source of run-to-run noise.

#![warn(missing_docs)]

use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed through [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed through [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Deterministic builder for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx word hasher: `state = (rotl(state, 5) ^ word) * SEED` per
/// input word.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut rest = bytes;
        while rest.len() >= 8 {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&rest[..8]);
            self.add_to_hash(u64::from_ne_bytes(buf));
            rest = &rest[8..];
        }
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_ne_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_round_trip() {
        let mut m: FxHashMap<u64, f64> = FxHashMap::default();
        for i in 0..1000u64 {
            *m.entry(i % 97).or_insert(0.0) += 1.0;
        }
        assert_eq!(m.len(), 97);
        assert_eq!(m[&0], 11.0);
        let s: FxHashSet<u64> = (0..50).collect();
        assert!(s.contains(&49) && !s.contains(&50));
    }

    #[test]
    fn hashing_is_deterministic_and_spreads() {
        let hash_of = |x: u64| {
            let mut h = FxHasher::default();
            h.write_u64(x);
            h.finish()
        };
        assert_eq!(hash_of(42), hash_of(42), "no per-process randomness");
        // Neighbouring keys must land in different buckets of a
        // power-of-two table (the high bits carry entropy).
        let buckets: std::collections::HashSet<u64> = (0..64).map(|i| hash_of(i) >> 57).collect();
        assert!(
            buckets.len() > 16,
            "only {} distinct buckets",
            buckets.len()
        );
    }

    #[test]
    fn byte_writes_agree_with_word_writes_on_length() {
        // Different input lengths must not collide trivially.
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 0, 0]);
        let mut c = FxHasher::default();
        c.write(&[1, 2, 3, 0, 0, 0, 0, 0, 9]);
        assert_ne!(a.finish(), c.finish());
        let _ = b.finish();
    }
}
