//! Offline stand-in for the `criterion` crate.
//!
//! This workspace builds in environments without a crates.io mirror, so
//! the external `criterion` dev-dependency is replaced by this vendored
//! crate. It keeps criterion's API for the subset the micro-benchmarks
//! use — [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`Throughput`], [`criterion_group!`] and
//! [`criterion_main!`] — but replaces the statistical engine with a
//! straightforward warmup + timed-batch mean/min report on stdout. That
//! is enough to compare hot paths release-to-release; it makes no
//! attempt at criterion's outlier analysis or HTML reports.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batch sizing for [`Bencher::iter_batched`] (all variants behave the
/// same here: one setup per measured invocation).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// The timing driver handed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    /// Mean and minimum wall time per iteration of the last routine.
    result: Option<(Duration, Duration)>,
}

impl Bencher {
    /// Times `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup: one untimed call (fills caches, faults pages).
        std::hint::black_box(routine());
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            let dt = t0.elapsed();
            total += dt;
            min = min.min(dt);
        }
        self.result = Some((total / self.sample_size as u32, min));
    }

    /// Times `routine` on fresh inputs built by `setup` (setup time is
    /// excluded from the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup()));
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            let dt = t0.elapsed();
            total += dt;
            min = min.min(dt);
        }
        self.result = Some((total / self.sample_size as u32, min));
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn report(id: &str, mean: Duration, min: Duration, throughput: Option<Throughput>) {
    let rate = throughput.map_or(String::new(), |t| {
        let per_sec = |n: u64| n as f64 / mean.as_secs_f64();
        match t {
            Throughput::Elements(n) => format!("  {:.3} Melem/s", per_sec(n) / 1e6),
            Throughput::Bytes(n) => format!("  {:.3} MiB/s", per_sec(n) / (1024.0 * 1024.0)),
        }
    });
    println!(
        "{id:<40} mean {:>10}  min {:>10}{rate}",
        fmt_duration(mean),
        fmt_duration(min)
    );
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed invocations per benchmark.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be nonzero");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            result: None,
        };
        f(&mut b);
        if let Some((mean, min)) = b.result {
            report(&id, mean, min, None);
        }
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used to derive rates for subsequent
    /// benchmarks in the group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        let mut b = Bencher {
            sample_size: self.criterion.sample_size,
            result: None,
        };
        f(&mut b);
        if let Some((mean, min)) = b.result {
            report(&id, mean, min, self.throughput);
        }
        self
    }

    /// Finishes the group (a no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Declares a benchmark group: a generator function wiring targets to a
/// configured [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        let mut g = c.benchmark_group("group");
        g.throughput(Throughput::Elements(1000));
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
    }

    crate::criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = target
    }

    #[test]
    fn harness_runs_all_shapes() {
        benches();
    }
}
