//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in environments without network access or a
//! crates.io registry mirror, so the external `rand` dependency is
//! replaced by this vendored crate exposing exactly the subset the
//! workload generators use: [`rngs::SmallRng`], [`SeedableRng`],
//! [`Rng::gen_range`] over primitive integer ranges, and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction the real `SmallRng` uses on 64-bit targets. The streams
//! are deterministic per seed, which is the only property the workloads
//! rely on: the generated programs *are* the benchmark definitions, so
//! any fixed high-quality stream is canonical for this repository.

#![warn(missing_docs)]

/// Random number generators.
pub mod rngs {
    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        pub(crate) fn from_seed_u64(seed: u64) -> Self {
            // Expand the seed with SplitMix64, as rand_xoshiro does.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }

        pub(crate) fn next_u64_impl(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl crate::RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.next_u64_impl()
        }
    }

    impl crate::SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng::from_seed_u64(seed)
        }
    }
}

/// The raw-output interface every generator implements.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open integer ranges only).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<G: RngCore> Rng for G {}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<G: RngCore>(self, rng: &mut G) -> T;
}

// Lemire-style unbiased bounded sampling would be overkill here; a
// simple widening-multiply reduction has bias below 2^-40 for every
// span the workloads use, and determinism is the only hard requirement.
fn bounded<G: RngCore>(rng: &mut G, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_unsigned_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = u64::from(self.end as u64 - self.start as u64);
                self.start + bounded(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64 - lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t; // full u64 domain
                }
                lo + bounded(rng, span) as $t
            }
        }
    )*};
}

impl_unsigned_range!(u8, u16, u32, u64);

impl SampleRange<usize> for core::ops::Range<usize> {
    fn sample_from<G: RngCore>(self, rng: &mut G) -> usize {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = (self.end - self.start) as u64;
        self.start + bounded(rng, span) as usize
    }
}

impl SampleRange<usize> for core::ops::RangeInclusive<usize> {
    fn sample_from<G: RngCore>(self, rng: &mut G) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + bounded(rng, (hi - lo) as u64 + 1) as usize
    }
}

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(bounded(rng, span) as i64) as $t
            }
        }
    )*};
}

impl_signed_range!(i8, i16, i32, i64);

/// Sequence-related extensions.
pub mod seq {
    use crate::RngCore;

    /// Slice extensions (only [`shuffle`](SliceRandom::shuffle) is
    /// provided).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<G: RngCore>(&mut self, rng: &mut G);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<G: RngCore>(&mut self, rng: &mut G) {
            for i in (1..self.len()).rev() {
                let j = crate::bounded(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let draw = |seed| {
            let mut r = SmallRng::seed_from_u64(seed);
            (0..16)
                .map(|_| r.gen_range(0u64..1_000_000))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let a = r.gen_range(-64i64..64);
            assert!((-64..64).contains(&a));
            let b = r.gen_range(0u8..8);
            assert!(b < 8);
            let c = r.gen_range(30u8..60);
            assert!((30..60).contains(&c));
            let d = r.gen_range(0usize..3);
            assert!(d < 3);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u64> = (0..100).collect();
        let mut r = SmallRng::seed_from_u64(3);
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle must move something");
    }
}
