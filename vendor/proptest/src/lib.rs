//! Offline stand-in for the `proptest` crate.
//!
//! This workspace builds in environments without a crates.io mirror, so
//! the external `proptest` dev-dependency is replaced by this vendored
//! crate. It keeps proptest's *interface* for the subset the test suite
//! uses — the [`proptest!`] macro, [`prop_assert!`]/[`prop_assert_eq!`],
//! [`arbitrary::any`], primitive ranges and tuples as strategies,
//! [`collection::vec`], [`Strategy::prop_map`], and
//! [`test_runner::ProptestConfig`] — but swaps the engine for plain
//! deterministic random-case testing: each property runs `cases` times
//! over a seeded SplitMix64 stream (no shrinking, no persistence files).
//! Failures print the case number, and the fixed seed makes every
//! failure reproducible by rerunning the test.

#![warn(missing_docs)]

/// Strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of [`Strategy::Value`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value from the strategy.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    #[derive(Clone, Copy, Debug)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_unsigned_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end as u64 - self.start as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64 - lo as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span) as $t
                }
            }
        )*};
    }

    impl_unsigned_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    ((self.start as i64).wrapping_add(rng.below(span) as i64)) as $t
                }
            }
        )*};
    }

    impl_signed_range_strategy!(i8, i16, i32, i64);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let u = rng.unit_f64();
            let v = self.start + u * (self.end - self.start);
            // Keep the half-open contract even if rounding lands on end.
            if v < self.end {
                v
            } else {
                self.start
            }
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $i:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A 0, B 1);
        (A 0, B 1, C 2);
        (A 0, B 1, C 2, D 3);
        (A 0, B 1, C 2, D 3, E 4);
        (A 0, B 1, C 2, D 3, E 4, F 5);
    }
}

/// `any::<T>()` — the full-domain strategy of a primitive type.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy of `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    // Mix extreme values in: uniform draws essentially
                    // never produce the boundary cases wide-integer
                    // properties care about.
                    match rng.below(8) {
                        0 => <$t>::MIN,
                        1 => <$t>::MAX,
                        2 => 0 as $t,
                        _ => rng.next_u64() as $t,
                    }
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64() * 2e6 - 1e6
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A size specification for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// A `Vec` strategy with element strategy `elem` and length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Test-runner configuration and the deterministic case RNG.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real default (256) is tuned for shrinking engines; 64
            // deterministic cases keep suite runtime proportionate.
            ProptestConfig { cases: 64 }
        }
    }

    /// The deterministic per-case random stream (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A stream derived from the property name and case index, so
        /// every property explores an independent, reproducible space.
        #[must_use]
        pub fn for_case(name: &str, case: u64) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// A uniform draw below `span` (`span > 0`).
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
        }

        /// A uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// The glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests: each `fn name(param in strategy, ...)` block
/// becomes a `#[test]` running the body over `cases` deterministic
/// random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($param:ident in $strat:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..u64::from(__config.cases) {
                let mut __rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), __case);
                $(let $param = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __run = || -> () { $body };
                if let Err(p) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(__run)) {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed",
                        __case + 1,
                        __config.cases,
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(p);
                }
            }
        }
    )*};
}

/// Asserts a condition inside a property (panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property (panics like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property (panics like `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges honour their bounds.
        #[test]
        fn ranges_in_bounds(a in 0u64..100, b in -50i64..50, c in 2usize..=8) {
            prop_assert!(a < 100);
            prop_assert!((-50..50).contains(&b));
            prop_assert!((2..=8).contains(&c));
        }

        /// Collections honour their size specification and element
        /// strategies compose through tuples and prop_map.
        #[test]
        fn vec_and_map_compose(
            v in prop::collection::vec((0u8..4, any::<bool>()), 1..10),
            m in (1u64..5).prop_map(|x| x * 10),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 10);
            for (x, _) in &v {
                prop_assert!(*x < 4);
            }
            prop_assert!(m % 10 == 0 && (10..50).contains(&m));
        }

        /// f64 ranges stay in bounds.
        #[test]
        fn f64_in_bounds(x in 0.1f64..100.0) {
            prop_assert!((0.1..100.0).contains(&x));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_runner::TestRng::for_case("t", 3);
        let mut b = crate::test_runner::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
