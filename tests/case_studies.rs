//! Integration tests of the paper's two case studies (Section 6): the
//! analyses must *explain* the problems, and the fixes must deliver
//! paper-shaped speedups.

use tea_core::golden::GoldenReference;
use tea_sim::core::simulate;
use tea_sim::psv::Event;
use tea_sim::SimConfig;
use tea_workloads::nab::MathMode;
use tea_workloads::{lbm, nab, Size};

#[test]
fn lbm_critical_load_is_llc_dominated_in_the_pics() {
    let program = lbm::program(Size::Test);
    let mut golden = GoldenReference::new();
    simulate(&program, SimConfig::default(), &mut [&mut golden]);
    let (top_addr, top_cycles) = golden.pics().top_instructions(1)[0];
    assert_eq!(
        program.inst_at(top_addr).unwrap().mnemonic(),
        "fld",
        "the dominant instruction must be a streaming load"
    );
    assert!(
        top_cycles / golden.pics().total() > 0.15,
        "the critical load dominates the profile"
    );
    // Its dominant signature includes ST-LLC: "this lw always misses in
    // the LLC".
    let stack = golden.pics().stack(top_addr).unwrap();
    let (&psv, _) = stack
        .iter()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap();
    assert!(psv.contains(Event::StLlc) && psv.contains(Event::StL1));
}

#[test]
fn lbm_prefetch_sweep_has_an_interior_optimum() {
    let cycles: Vec<u64> = (0..=6)
        .map(|d| {
            simulate(
                &lbm::program_with_prefetch(Size::Test, d),
                SimConfig::default(),
                &mut [],
            )
            .cycles
        })
        .collect();
    let best = (0..=6).min_by_key(|&d| cycles[d]).unwrap();
    assert!(
        (2..=5).contains(&best),
        "optimal distance should be interior (paper: 3), got {best} from {cycles:?}"
    );
    let speedup = cycles[0] as f64 / cycles[best] as f64;
    assert!(
        speedup > 1.15 && speedup < 1.6,
        "speedup at the optimum should be paper-shaped (~1.28x), got {speedup:.3}"
    );
}

#[test]
fn nab_fsqrt_time_is_base_and_flushes_explain_it() {
    let program = nab::program(Size::Test);
    let mut golden = GoldenReference::new();
    let stats = simulate(&program, SimConfig::default(), &mut [&mut golden]);
    let fsqrt = nab::fsqrt_addr(Size::Test, MathMode::Ieee).unwrap();
    let fsqrt_cycles = golden.pics().instruction_total(fsqrt);
    assert!(
        fsqrt_cycles / golden.pics().total() > 0.10,
        "fsqrt.d must be performance-critical: {:.3}",
        fsqrt_cycles / golden.pics().total()
    );
    // Its own stack is overwhelmingly Base — no events on the sqrt.
    let stack = golden.pics().stack(fsqrt).unwrap();
    let base = stack
        .get(&tea_sim::psv::Psv::empty())
        .copied()
        .unwrap_or(0.0);
    assert!(
        base / fsqrt_cycles > 0.9,
        "fsqrt.d time must be event-free (Base): {:.3}",
        base / fsqrt_cycles
    );
    // The flushes appear as FL-EX on the CSR instructions.
    assert_eq!(
        stats.event_insts[Event::FlEx as usize],
        2 * nab::iterations(Size::Test)
    );
}

#[test]
fn nab_fix_speedups_are_paper_shaped() {
    let ieee = simulate(&nab::program(Size::Test), SimConfig::default(), &mut []).cycles;
    let finite = simulate(
        &nab::program_with_mode(Size::Test, MathMode::FiniteMath),
        SimConfig::default(),
        &mut [],
    )
    .cycles;
    let fast = simulate(
        &nab::program_with_mode(Size::Test, MathMode::FastMath),
        SimConfig::default(),
        &mut [],
    )
    .cycles;
    let s_finite = ieee as f64 / finite as f64;
    let s_fast = ieee as f64 / fast as f64;
    assert!(
        (1.4..=3.0).contains(&s_finite),
        "finite-math speedup {s_finite:.2} (paper: 1.96x)"
    );
    assert!(
        s_fast > s_finite && s_fast < 4.0,
        "fast-math speedup {s_fast:.2} must exceed finite-math {s_finite:.2} (paper: 2.45x)"
    );
}
