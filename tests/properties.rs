//! Property-based tests over random programs and random profiles:
//! simulator-wide invariants that must hold for *any* program, and
//! metric-level laws that must hold for *any* cycle stack.

use proptest::prelude::*;
use tea_core::correlation::pearson;
use tea_core::golden::GoldenReference;
use tea_core::pics::{Granularity, Pics, UnitMap};
use tea_core::pics_error;
use tea_sim::core::{simulate, Core};
use tea_sim::psv::{CommitState, Event, Psv};
use tea_sim::SimConfig;
use tea_workloads::synth;

fn small_kernel_cfg() -> (u64, usize) {
    (60, 18) // iterations, body ops
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every cycle of any random program lands in exactly one commit
    /// state, and the golden reference attributes all of them.
    #[test]
    fn golden_attributes_every_cycle(seed in 0u64..5000) {
        let (iters, ops) = small_kernel_cfg();
        let program = synth::random_kernel(seed, iters, ops);
        let mut golden = GoldenReference::new();
        let stats = simulate(&program, SimConfig::default(), &mut [&mut golden]);
        let state_sum: u64 = stats.state_cycles.iter().sum();
        prop_assert_eq!(state_sum, stats.cycles);
        prop_assert!((golden.pics().total() - stats.cycles as f64).abs() < 1e-6);
    }

    /// The timing simulator is a pure function of the program.
    #[test]
    fn simulation_is_deterministic(seed in 0u64..5000) {
        let (iters, ops) = small_kernel_cfg();
        let program = synth::random_kernel(seed, iters, ops);
        let a = simulate(&program, SimConfig::default(), &mut []);
        let b = simulate(&program, SimConfig::default(), &mut []);
        prop_assert_eq!(a, b);
    }

    /// Dynamic instruction counts are preserved: the simulator retires
    /// exactly the committed stream the interpreter produces.
    #[test]
    fn retired_matches_functional_execution(seed in 0u64..5000) {
        let (iters, ops) = small_kernel_cfg();
        let program = synth::random_kernel(seed, iters, ops);
        let mut m = tea_isa::Machine::new(&program);
        let functional = m.run(u64::MAX);
        let stats = simulate(&program, SimConfig::default(), &mut []);
        prop_assert_eq!(stats.retired, functional);
    }

    /// Flushed cycles can only exist if something flushed.
    #[test]
    fn flushed_cycles_imply_flushes(seed in 0u64..5000) {
        let (iters, ops) = small_kernel_cfg();
        let program = synth::random_kernel(seed, iters, ops);
        let stats = simulate(&program, SimConfig::default(), &mut []);
        if stats.cycles_in(CommitState::Flushed) > 0 {
            prop_assert!(stats.squashes > 0 || stats.commit_flushes > 0);
        }
    }

    /// The error metric is bounded, zero on self, and monotone under
    /// coarsening for arbitrary random profiles.
    #[test]
    fn error_metric_laws(
        entries in prop::collection::vec(
            (0u64..64, 0u16..512, 0.1f64..100.0), 1..40),
        scheme_entries in prop::collection::vec(
            (0u64..64, 0u16..512, 0.1f64..100.0), 1..40),
    ) {
        let mut a = tea_isa::asm::Asm::new();
        a.func("f");
        for _ in 0..32 {
            a.nop();
        }
        a.func("g");
        for _ in 0..32 {
            a.nop();
        }
        a.halt();
        let program = a.finish().unwrap();
        let mut golden = Pics::new();
        for (idx, bits, cyc) in &entries {
            golden.add(program.addr_of(*idx as usize), Psv::from_bits(*bits), *cyc);
        }
        let mut scheme = Pics::new();
        for (idx, bits, cyc) in &scheme_entries {
            scheme.add(program.addr_of(*idx as usize), Psv::from_bits(*bits), *cyc);
        }
        let full = Psv::from_bits(Psv::ALL_BITS);
        let units_i = UnitMap::new(&program, Granularity::Instruction);
        let units_b = UnitMap::new(&program, Granularity::BasicBlock);
        let units_f = UnitMap::new(&program, Granularity::Function);
        let units_a = UnitMap::new(&program, Granularity::Application);
        // Zero on self.
        prop_assert!(pics_error(&golden, &golden, full, &units_i) < 1e-9);
        // Bounded and monotone over granularity.
        let e_i = pics_error(&scheme, &golden, full, &units_i);
        let e_b = pics_error(&scheme, &golden, full, &units_b);
        let e_f = pics_error(&scheme, &golden, full, &units_f);
        let e_a = pics_error(&scheme, &golden, full, &units_a);
        for e in [e_i, e_b, e_f, e_a] {
            prop_assert!((0.0..=1.0).contains(&e));
        }
        // Coarsening cannot increase the error — but only partitions
        // that refine each other are comparable: blocks and functions
        // both coarsen instructions, and the application coarsens
        // everything (blocks may span functions in branch-free code, so
        // block vs function is not ordered in general).
        prop_assert!(e_b <= e_i + 1e-9);
        prop_assert!(e_f <= e_i + 1e-9);
        prop_assert!(e_a <= e_f + 1e-9);
        prop_assert!(e_a <= e_b + 1e-9);
        // Masking to a subset never increases the error of a
        // same-shape profile... (not a theorem in general, so only
        // check the self case under masking.)
        let sub = Psv::from_events(&[Event::StL1, Event::FlMb]);
        prop_assert!(pics_error(&golden, &golden, sub, &units_i) < 1e-9);
    }

    /// Scaling a PICS preserves relative shape exactly.
    #[test]
    fn pics_scaling_preserves_shape(
        entries in prop::collection::vec((0u64..32, 0u16..512, 0.1f64..50.0), 1..30),
        target in 1.0f64..1e6,
    ) {
        let mut pics = Pics::new();
        for (idx, bits, cyc) in &entries {
            pics.add(0x1_0000 + idx * 4, Psv::from_bits(*bits), *cyc);
        }
        let scaled = pics.scaled_to(target);
        prop_assert!((scaled.total() - target).abs() < 1e-6 * target.max(1.0));
        // Ratios preserved for the top instruction.
        let (top, cycles) = pics.top_instructions(1)[0];
        let (stop, scycles) = scaled.top_instructions(1)[0];
        prop_assert_eq!(top, stop);
        prop_assert!(((cycles / pics.total()) - (scycles / scaled.total())).abs() < 1e-9);
    }

    /// Pearson correlation is always within [-1, 1] when defined.
    #[test]
    fn pearson_is_bounded(xs in prop::collection::vec(-100.0f64..100.0, 2..50),
                          ys in prop::collection::vec(-100.0f64..100.0, 2..50)) {
        let n = xs.len().min(ys.len());
        if let Some(r) = pearson(&xs[..n], &ys[..n]) {
            prop_assert!((-1.0..=1.0).contains(&r));
        }
    }
}

#[test]
fn incremental_run_for_matches_single_run() {
    // Running the core in slices must equal one shot (the cycle loop
    // has no hidden cross-call state).
    let program = synth::random_kernel(99, 60, 18);
    let one = simulate(&program, SimConfig::default(), &mut []);
    let mut core = Core::new(&program, SimConfig::default());
    let mut guard = 0;
    loop {
        let before = core.stats().cycles;
        core.run_for(1000, &mut []);
        if core.stats().cycles == before || core.stats().retired == one.retired {
            break;
        }
        guard += 1;
        assert!(guard < 10_000, "sliced run did not terminate");
    }
    let sliced = core.stats();
    assert_eq!(sliced.cycles, one.cycles);
    assert_eq!(sliced.retired, one.retired);
    assert_eq!(sliced.state_cycles, one.state_cycles);
}
