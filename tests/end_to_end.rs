//! Cross-crate integration tests: the full pipeline from assembled
//! workload through the timing simulator to scored profiles, checking
//! the paper's headline claims at test scale.

use tea_bench::{profile_all_schemes, ALL_SCHEMES};
use tea_core::pics::Granularity;
use tea_core::schemes::Scheme;
use tea_workloads::{all_workloads, Size};

#[test]
fn tea_beats_front_end_tagging_on_every_workload() {
    for w in all_workloads(Size::Test) {
        let run = profile_all_schemes(&w.program, 509, 11);
        let tea = run.error(Scheme::Tea, &w.program, Granularity::Instruction);
        for baseline in [Scheme::Ibs, Scheme::Spe, Scheme::Ris] {
            let e = run.error(baseline, &w.program, Granularity::Instruction);
            // Margin covers sampling noise; gcc's huge static footprint
            // makes all schemes nearly tie at test scale (see
            // EXPERIMENTS.md on sampling density).
            assert!(
                tea <= e + 0.05,
                "{}: TEA ({:.3}) must not lose to {} ({:.3})",
                w.name,
                tea,
                baseline,
                e
            );
        }
    }
}

#[test]
fn tea_is_at_least_as_good_as_nci_on_flush_heavy_workloads() {
    // nab flushes constantly; the last-committed-instruction rule is
    // exactly what separates TEA from NCI-TEA there.
    let w = all_workloads(Size::Test)
        .into_iter()
        .find(|w| w.name == "nab")
        .unwrap();
    let run = profile_all_schemes(&w.program, 509, 11);
    let tea = run.error(Scheme::Tea, &w.program, Granularity::Instruction);
    let nci = run.error(Scheme::NciTea, &w.program, Granularity::Instruction);
    assert!(
        tea < nci,
        "on nab, TEA ({tea:.3}) must beat NCI-TEA ({nci:.3})"
    );
}

#[test]
fn golden_reference_attributes_every_cycle_on_every_workload() {
    for w in all_workloads(Size::Test) {
        let run = profile_all_schemes(&w.program, 4096, 1);
        assert!(
            (run.golden.pics().total() - run.stats.cycles as f64).abs() < 1e-6,
            "{}: golden total {} != cycles {}",
            w.name,
            run.golden.pics().total(),
            run.stats.cycles
        );
    }
}

#[test]
fn profiled_runs_are_deterministic() {
    let w = all_workloads(Size::Test)
        .into_iter()
        .find(|w| w.name == "omnetpp")
        .unwrap();
    let a = profile_all_schemes(&w.program, 509, 11);
    let b = profile_all_schemes(&w.program, 509, 11);
    assert_eq!(a.stats, b.stats);
    for s in ALL_SCHEMES {
        assert_eq!(a.samples[&s], b.samples[&s], "{s} sample counts differ");
        let ea = a.error(s, &w.program, Granularity::Instruction);
        let eb = b.error(s, &w.program, Granularity::Instruction);
        assert_eq!(ea, eb, "{s} errors differ across identical runs");
    }
}

#[test]
fn errors_do_not_increase_at_coarser_granularity() {
    let w = all_workloads(Size::Test)
        .into_iter()
        .find(|w| w.name == "leela")
        .unwrap();
    let run = profile_all_schemes(&w.program, 509, 3);
    for s in ALL_SCHEMES {
        let inst = run.error(s, &w.program, Granularity::Instruction);
        let func = run.error(s, &w.program, Granularity::Function);
        let app = run.error(s, &w.program, Granularity::Application);
        assert!(
            func <= inst + 1e-9 && app <= func + 1e-9,
            "{s}: errors must be monotone over granularity: {inst:.3} {func:.3} {app:.3}"
        );
    }
}

#[test]
fn dispatch_tagged_tea_is_no_better_than_ibs_class() {
    // The paper's ablation: TEA's event set cannot rescue a
    // non-time-proportional tagger.
    let mut dt_sum = 0.0;
    let mut tea_sum = 0.0;
    let mut n = 0.0;
    for w in all_workloads(Size::Test) {
        let run = profile_all_schemes(&w.program, 509, 5);
        dt_sum += run.error(
            Scheme::TeaDispatchTagged,
            &w.program,
            Granularity::Instruction,
        );
        tea_sum += run.error(Scheme::Tea, &w.program, Granularity::Instruction);
        n += 1.0;
    }
    assert!(
        dt_sum / n > 2.0 * (tea_sum / n),
        "dispatch tagging must be far worse on average: TEA-DT {:.3} vs TEA {:.3}",
        dt_sum / n,
        tea_sum / n
    );
}

#[test]
fn per_process_profiles_survive_multiprogramming() {
    use tea_core::golden::GoldenReference;
    use tea_core::sampling::SampleTimer;
    use tea_core::tea::TeaProfiler;
    use tea_sim::system::System;
    use tea_sim::trace::Observer;
    use tea_sim::SimConfig;
    use tea_workloads::{mcf, nab};

    let prog_a = mcf::program(Size::Test);
    let prog_b = nab::program(Size::Test);
    // Solo ground truth.
    let mut solo_a = GoldenReference::new();
    tea_sim::core::simulate(&prog_a, SimConfig::default(), &mut [&mut solo_a]);
    let mut solo_b = GoldenReference::new();
    tea_sim::core::simulate(&prog_b, SimConfig::default(), &mut [&mut solo_b]);

    let mut sys = System::new(&[&prog_a, &prog_b], &SimConfig::default(), 8_000, 80);
    let mut tea_a = TeaProfiler::new(SampleTimer::with_jitter(509, 60, 51));
    let mut tea_b = TeaProfiler::new(SampleTimer::with_jitter(509, 60, 52));
    while let Some(pid) = sys.next_runnable() {
        if pid == 0 {
            let mut obs: Vec<&mut dyn Observer> = vec![&mut tea_a];
            sys.run_slice(0, &mut obs);
        } else {
            let mut obs: Vec<&mut dyn Observer> = vec![&mut tea_b];
            sys.run_slice(1, &mut obs);
        }
    }
    assert_eq!(
        tea_a.pics().top_instructions(1)[0].0,
        solo_a.pics().top_instructions(1)[0].0,
        "process 0's TEA must find its solo critical instruction"
    );
    assert_eq!(
        tea_b.pics().top_instructions(1)[0].0,
        solo_b.pics().top_instructions(1)[0].0,
        "process 1's TEA must find its solo critical instruction"
    );
}

#[test]
fn cmp_cores_profile_independently() {
    use tea_core::golden::GoldenReference;
    use tea_sim::cmp::CmpSystem;
    use tea_sim::trace::Observer;
    use tea_sim::SimConfig;
    use tea_workloads::{exchange2, mcf};

    let prog_a = mcf::program(Size::Test);
    let prog_b = exchange2::program(Size::Test);
    let mut cmp = CmpSystem::new(&[&prog_a, &prog_b], &SimConfig::default());
    let mut g_a = GoldenReference::new();
    let mut g_b = GoldenReference::new();
    {
        let mut obs: Vec<Vec<&mut dyn Observer>> = vec![vec![&mut g_a], vec![&mut g_b]];
        cmp.run(&mut obs, 100_000_000);
    }
    assert!(cmp.all_done());
    // Each core's golden reference attributes exactly its own cycles.
    assert!((g_a.pics().total() - cmp.stats(0).cycles as f64).abs() < 1e-6);
    assert!((g_b.pics().total() - cmp.stats(1).cycles as f64).abs() < 1e-6);
    // And finds its own workload's bottleneck kind: mcf's top is a load,
    // exchange2's is not memory-bound.
    let top_a = g_a.pics().top_instructions(1)[0].0;
    assert_eq!(prog_a.inst_at(top_a).unwrap().mnemonic(), "ld");
}
