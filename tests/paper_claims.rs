//! Codified paper claims: the headline numbers and orderings of the
//! paper's evaluation, asserted at test scale with tolerances wide
//! enough for the scaled-down sample budgets but tight enough that a
//! regression in any subsystem (simulator timing, attribution policy,
//! error metric) breaks them.

use tea_bench::profile_all_schemes;
use tea_core::golden::GoldenReference;
use tea_core::overhead::{csr_bits_used, performance_overhead, StorageBreakdown};
use tea_core::pics::Granularity;
use tea_core::schemes::Scheme;
use tea_sim::core::simulate;
use tea_sim::SimConfig;
use tea_workloads::{all_workloads, omnetpp, Size};

/// Section 5.1: the scheme ordering TEA < NCI-TEA < {IBS, SPE, RIS}
/// holds on average across the suite.
#[test]
fn figure5_average_ordering() {
    let mut sums = std::collections::HashMap::new();
    let suite = all_workloads(Size::Test);
    for w in &suite {
        let run = profile_all_schemes(&w.program, 509, 13);
        for s in Scheme::FIGURE5 {
            *sums.entry(s).or_insert(0.0) += run.error(s, &w.program, Granularity::Instruction);
        }
    }
    let n = suite.len() as f64;
    let avg = |s: Scheme| sums[&s] / n;
    assert!(
        avg(Scheme::Tea) < avg(Scheme::NciTea) * 0.8,
        "TEA must clearly beat NCI-TEA"
    );
    for baseline in [Scheme::Ibs, Scheme::Spe, Scheme::Ris] {
        assert!(
            avg(Scheme::NciTea) < avg(baseline) * 0.6,
            "NCI-TEA must clearly beat {baseline}"
        );
    }
    // Magnitude bands (wide: test-size sampling noise).
    assert!(
        avg(Scheme::Tea) < 0.25,
        "TEA average {:.3}",
        avg(Scheme::Tea)
    );
    assert!(
        avg(Scheme::Ibs) > 0.4,
        "IBS average {:.3}",
        avg(Scheme::Ibs)
    );
}

/// Figure 8: TEA's error is statistical — it must not grow as the
/// sampling interval shrinks (checked on one benchmark, three octaves).
#[test]
fn figure8_tea_error_monotone_in_frequency() {
    let p = omnetpp::program(Size::Test);
    let mut errors = Vec::new();
    for interval in [2048u64, 512, 128] {
        let run = profile_all_schemes(&p, interval, 3);
        errors.push(run.error(Scheme::Tea, &p, Granularity::Instruction));
    }
    assert!(
        errors[2] <= errors[0] + 0.02,
        "16x more samples must not hurt: {errors:?}"
    );
}

/// Figure 9: coarser granularity never increases any scheme's error.
#[test]
fn figure9_granularity_monotone() {
    let p = omnetpp::program(Size::Test);
    let run = profile_all_schemes(&p, 509, 5);
    for s in Scheme::FIGURE5 {
        let inst = run.error(s, &p, Granularity::Instruction);
        let func = run.error(s, &p, Granularity::Function);
        assert!(func <= inst + 1e-9, "{s}: {func} > {inst}");
    }
}

/// Section 2/5: combined events are a significant minority of eventful
/// executions across the suite (paper: 30.0 %).
#[test]
fn combined_event_fraction_is_a_significant_minority() {
    let mut eventful = 0u64;
    let mut combined = 0u64;
    for w in all_workloads(Size::Test) {
        let s = simulate(&w.program, SimConfig::default(), &mut []);
        eventful += s.eventful_insts;
        combined += s.combined_event_insts;
    }
    let frac = combined as f64 / eventful as f64;
    assert!(
        (0.05..=0.6).contains(&frac),
        "combined fraction {frac:.3} out of the plausible band around 30%"
    );
}

/// Section 3: the nine events explain all long stalls — eventless
/// commit stalls (beyond execution latency) are short everywhere.
#[test]
fn eventless_stalls_are_short_across_the_suite() {
    for w in all_workloads(Size::Test) {
        let mut g = GoldenReference::new();
        simulate(&w.program, SimConfig::default(), &mut [&mut g]);
        if let Some(p99) = g.eventless_stall_quantile(0.99) {
            assert!(
                p99 <= 10.0,
                "{}: eventless stall p99 {p99} (paper: 5.8 cycles)",
                w.name
            );
        }
    }
}

/// Section 3 overheads: the storage/power/CSR arithmetic.
#[test]
fn section3_overheads() {
    let b = StorageBreakdown::for_config(&SimConfig::default());
    assert!((241..=257).contains(&b.total_bytes()), "~249 B");
    assert!((2.8..=3.6).contains(&b.power_mw()), "~3.2 mW");
    assert_eq!(csr_bits_used(4), 46);
    assert!(
        (performance_overhead(4000.0) - 0.011).abs() < 0.001,
        "1.1% at 4 kHz"
    );
}

/// Section 5.1 footnote: IBS and SPE are near-identical (their event
/// sets differ only by ST-LLC), as the paper's 55.6 vs 55.5 shows.
#[test]
fn ibs_and_spe_are_near_identical() {
    let p = omnetpp::program(Size::Test);
    let run = profile_all_schemes(&p, 509, 7);
    let ibs = run.error(Scheme::Ibs, &p, Granularity::Instruction);
    let spe = run.error(Scheme::Spe, &p, Granularity::Instruction);
    assert!((ibs - spe).abs() < 0.05, "IBS {ibs:.3} vs SPE {spe:.3}");
}
