//! Integration tests of the observability layer against the real
//! pipeline: `tea-metrics/v1` snapshots must be deterministic across
//! serial and parallel engine schedules, the feature-gated simulator
//! counters must cross-check against the golden reference, and an
//! engine run must yield a loadable Chrome trace plus a valid metrics
//! artifact.
//!
//! All three tests share the process-global metrics registry and sink
//! list, so they serialize on a file-local mutex and reset the registry
//! at each start.

use std::sync::{Mutex, MutexGuard};

use tea_core::golden::GoldenReference;
use tea_exp::{CellSpec, Engine, Matrix};
use tea_obs::chrome::ChromeTraceSink;
use tea_obs::metrics::{self, MetricValue};
use tea_sim::core::simulate;
use tea_sim::psv::Event;
use tea_sim::SimConfig;
use tea_workloads::{all_workloads, deepsjeng, lbm, xz, Size};

/// Serializes tests that touch the global registry / sink list.
fn lock() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    match GATE.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[test]
fn metrics_snapshot_is_identical_for_serial_and_parallel_runs() {
    let _gate = lock();
    let matrix = Matrix::new()
        .workloads(vec![lbm::workload(Size::Test), xz::workload(Size::Test)])
        .seeds(&[11, 29]);

    metrics::global().reset();
    let _ = Engine::new(1)
        .quiet()
        .run("obs-determinism", matrix.cells());
    let serial = metrics::global().snapshot();

    metrics::global().reset();
    let _ = Engine::new(4)
        .quiet()
        .run("obs-determinism", matrix.cells());
    let parallel = metrics::global().snapshot();

    // The registry holds only counters of deterministic quantities and
    // commutes over addition, so the two maps must be *equal* — the
    // snapshot timestamp is the only field allowed to differ.
    assert_eq!(
        serial.metrics(),
        parallel.metrics(),
        "metric totals must not depend on worker scheduling"
    );
    // Sanity: the run actually populated all three layers.
    assert_eq!(serial.counter("engine.cells_ok"), Some(4));
    assert_eq!(serial.counter("sim.runs"), Some(4));
    assert!(serial.counter("sim.cycles").unwrap_or(0) > 0);
    assert!(serial
        .metrics()
        .keys()
        .any(|k| k.starts_with("profiler.TEA.")));
}

#[test]
fn series_sampling_never_perturbs_metric_determinism() {
    let _gate = lock();
    let matrix = Matrix::new()
        .workloads(vec![lbm::workload(Size::Test), xz::workload(Size::Test)])
        .seeds(&[11, 29]);

    // Serial run with no sampler: the reference metric map.
    metrics::global().reset();
    let _ = Engine::new(1).quiet().run("obs-series", matrix.cells());
    let serial = metrics::global().snapshot();

    // Parallel run with the flight-recorder sampler hammering the
    // registry at a 1ms interval throughout. The sampler only *reads*
    // (registry snapshots, span-stack loads), so the final metric map
    // must stay byte-identical to the serial, sampler-free run.
    metrics::global().reset();
    let sampler = tea_obs::series::Sampler::start(tea_obs::series::SamplerConfig {
        interval_ms: 1,
        capacity: 4096,
        profile_spans: true,
    });
    let _ = Engine::new(4).quiet().run("obs-series", matrix.cells());
    let series = sampler.stop();
    let parallel = metrics::global().snapshot();

    assert!(
        series.samples.len() >= 2,
        "sampler takes at least a first and a final sample"
    );
    assert_eq!(
        serial.metrics(),
        parallel.metrics(),
        "a running sampler must not perturb metric determinism"
    );
    // The queue-depth gauge is add-based accounting, so it nets back to
    // zero at every run boundary regardless of worker interleaving.
    assert_eq!(
        serial.metrics().get("engine.queue_depth"),
        Some(&MetricValue::Gauge(0)),
        "engine.queue_depth gauge must net to zero after the run"
    );
    // The series itself saw the gauge and the cell counters move.
    assert!(series.metric_names().iter().any(|n| n == "engine.cells_ok"));
}

#[test]
fn sim_counters_cross_check_against_the_golden_reference() {
    let _gate = lock();
    metrics::global().reset();

    let mut runs = 0u64;
    let mut cycles = 0u64;
    let mut commits = 0u64;
    let mut squashes = 0u64;
    let mut event_insts = [0u64; 9];
    let mut golden_executions = 0u64;
    let mut golden_events = [0u64; 9];
    for w in all_workloads(Size::Test) {
        let mut golden = GoldenReference::new();
        let stats = simulate(&w.program, SimConfig::default(), &mut [&mut golden]);
        runs += 1;
        cycles += stats.cycles;
        commits += stats.retired;
        squashes += stats.squashes;
        for (i, n) in stats.event_insts.iter().enumerate() {
            event_insts[i] += n;
        }
        let counts = golden.event_counts();
        for addr in counts.addrs().collect::<Vec<_>>() {
            golden_executions += counts.executions(addr);
            for (i, &e) in Event::ALL.iter().enumerate() {
                golden_events[i] += counts.count(addr, e);
            }
        }
    }
    let golden_l1d = golden_events[Event::StL1 as usize];

    let snap = metrics::global().snapshot();
    // The sim publishes its per-run totals once at halt; across the
    // suite the counters must equal the summed `SimStats` exactly.
    assert_eq!(snap.counter("sim.runs"), Some(runs));
    assert_eq!(snap.counter("sim.cycles"), Some(cycles));
    assert_eq!(snap.counter("sim.commits"), Some(commits));
    assert_eq!(snap.counter("sim.squashes"), Some(squashes));

    // The golden reference observes every retirement, so its execution
    // total is exactly the commit counter.
    assert_eq!(
        golden_executions, commits,
        "golden executions must equal committed instructions"
    );
    // And its per-event counts are exactly the retired-instruction
    // event counts the sim tallies into `SimStats::event_insts`.
    assert_eq!(
        golden_events, event_insts,
        "golden per-event counts must equal the sim's retired-PSV tallies"
    );
    // Cache/TLB miss counters count *all* accesses, including wrong-path
    // and prefetch traffic, so the golden (retired-only) event totals
    // bound them from below.
    assert!(golden_l1d > 0, "test suite must exercise L1D misses");
    assert!(
        snap.counter("sim.cache.l1d_misses").unwrap_or(0) >= golden_l1d,
        "sim L1D miss counter must dominate golden ST-L1 events"
    );
    assert!(
        snap.counter("sim.cache.llc_misses").unwrap_or(0) >= golden_events[Event::StLlc as usize],
        "sim LLC miss counter must dominate golden ST-LLC events"
    );
    assert!(
        snap.counter("sim.tlb.dtlb_misses").unwrap_or(0) >= golden_events[Event::StTlb as usize],
        "sim DTLB miss counter must dominate golden ST-TLB events"
    );

    // The occupancy histogram observes once per cycle, so its bucket
    // counts must sum back to the cycle counter.
    match snap.metrics().get("sim.observer_buffer_occupancy") {
        Some(MetricValue::Histogram { counts, .. }) => {
            assert_eq!(counts.iter().sum::<u64>(), cycles);
        }
        other => panic!("occupancy histogram missing or mistyped: {other:?}"),
    }
}

#[test]
fn engine_runs_export_a_loadable_trace_and_a_valid_metrics_artifact() {
    let _gate = lock();
    metrics::global().reset();

    let sink = std::sync::Arc::new(ChromeTraceSink::new());
    let id = tea_obs::add_sink(sink.clone());
    let cells = vec![
        CellSpec::for_workload(&lbm::workload(Size::Test)),
        CellSpec::for_workload(&deepsjeng::workload(Size::Test)),
    ];
    let _ = Engine::new(2).quiet().run("obs-artifacts", cells);
    tea_obs::remove_sink(id);

    let trace = sink.to_json();
    tea_exp::json::validate(&trace).expect("chrome trace must be valid JSON");
    let doc = tea_exp::json::parse(&trace).expect("chrome trace must parse");
    assert!(
        doc.get("traceEvents").is_some(),
        "traceEvents array present"
    );
    assert!(trace.contains("\"ph\":\"B\""), "span begin events present");
    assert!(trace.contains("\"ph\":\"E\""), "span end events present");
    assert!(
        trace.contains("thread_name") && trace.contains("engine-worker-"),
        "per-worker lanes must be named"
    );
    assert!(
        trace.contains("\"name\":\"cell\""),
        "per-cell spans present"
    );

    let metrics_json = metrics::global().snapshot().to_json();
    tea_exp::json::validate(&metrics_json).expect("metrics artifact must be valid JSON");
    let doc = tea_exp::json::parse(&metrics_json).expect("metrics artifact must parse");
    assert_eq!(
        doc.get("schema").and_then(|s| s.as_str()),
        Some(tea_obs::metrics::METRICS_SCHEMA)
    );
    assert!(doc.get("metrics").is_some());
}
