//! The paper's lbm case study as an application: use TEA to find the
//! performance-critical streaming load, sweep software-prefetch
//! distances, and watch the bottleneck move from load latency (ST-LLC)
//! to store bandwidth (DR-SQ).
//!
//! Run with: `cargo run --release --example lbm_prefetch`

use tea_core::golden::GoldenReference;
use tea_core::render::render_top_instructions;
use tea_core::sampling::SampleTimer;
use tea_core::tea::TeaProfiler;
use tea_sim::core::Core;
use tea_sim::SimConfig;
use tea_workloads::{lbm, Size};

fn main() {
    let size = Size::Test;

    // Step 1: profile the unmodified kernel with TEA.
    let program = lbm::program(size);
    let mut tea = TeaProfiler::new(SampleTimer::with_jitter(512, 64, 3));
    let mut golden = GoldenReference::new();
    let base = Core::new(&program, SimConfig::default()).run(&mut [&mut tea, &mut golden]);
    println!(
        "unmodified lbm: {} cycles. TEA's view of the top instructions:\n",
        base.cycles
    );
    print!(
        "{}",
        render_top_instructions(&tea.pics().scaled_to(golden.pics().total()), &program, 3)
    );
    println!("-> a streaming load dominated by ST-L1+ST-LLC: software prefetching applies.\n");

    // Step 2: sweep the prefetch distance, as the paper's Figure 11.
    let mut best = (0u64, base.cycles);
    for distance in 1..=6 {
        let p = lbm::program_with_prefetch(size, distance);
        let stats = Core::new(&p, SimConfig::default()).run(&mut []);
        let speedup = base.cycles as f64 / stats.cycles as f64;
        println!(
            "prefetch distance {distance}: {} cycles, speedup {speedup:.3}x",
            stats.cycles
        );
        if stats.cycles < best.1 {
            best = (distance, stats.cycles);
        }
    }
    println!(
        "\nbest distance: {} with {:.3}x speedup (the paper picks 3, 1.28x on its core);",
        best.0,
        base.cycles as f64 / best.1 as f64
    );
    println!("larger distances stop helping as the store queue (DR-SQ) becomes the wall.");
}
