//! Compare all five profiling schemes on one workload, from a single
//! simulation pass: the golden reference scores each of TEA, NCI-TEA,
//! IBS, SPE and RIS with the paper's Section 4 error metric.
//!
//! The run is one cell of the experiment engine — the same code path
//! the figure harnesses fan out in parallel.
//!
//! Run with: `cargo run --release --example compare_profilers [workload]`

use tea_core::pics::Granularity;
use tea_core::schemes::Scheme;
use tea_exp::{CellSpec, Engine};
use tea_workloads::{all_workloads, Size};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "omnetpp".into());
    let workload = all_workloads(Size::Test)
        .into_iter()
        .find(|w| w.name == which)
        .unwrap_or_else(|| {
            eprintln!("unknown workload {which}; available:");
            for w in all_workloads(Size::Test) {
                eprintln!("  {} — {}", w.name, w.description);
            }
            std::process::exit(1);
        });

    let schemes = [
        Scheme::Tea,
        Scheme::NciTea,
        Scheme::Ibs,
        Scheme::Spe,
        Scheme::Ris,
    ];
    let spec = CellSpec::for_workload(&workload)
        .interval(512)
        .seed(9)
        .schemes(&schemes);
    let run = Engine::serial()
        .quiet()
        .run("compare-profilers", vec![spec]);
    let cell = run.cells[0].result().expect("cell completes");

    println!(
        "{} — {}\n{} cycles, IPC {:.2} (simulated in {:.2}s, {:.2} Msim-inst/s)\n",
        workload.name,
        workload.description,
        cell.stats.cycles,
        cell.stats.ipc(),
        cell.wall.as_secs_f64(),
        cell.sim_mips()
    );
    println!(
        "{:<10} {:>10} {:>16} {:>16}",
        "scheme", "samples", "error (instr)", "error (func)"
    );
    for scheme in schemes {
        let e_i = cell
            .error(scheme, Granularity::Instruction)
            .expect("golden attached");
        let e_f = cell
            .error(scheme, Granularity::Function)
            .expect("golden attached");
        println!(
            "{:<10} {:>10} {:>15.1}% {:>15.1}%",
            scheme.name(),
            cell.samples[&scheme],
            e_i * 100.0,
            e_f * 100.0
        );
    }
    println!("\nTime-proportional sampling (TEA) should win at both granularities.");
}
