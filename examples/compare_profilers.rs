//! Compare all five profiling schemes on one workload, from a single
//! simulation pass: the golden reference scores each of TEA, NCI-TEA,
//! IBS, SPE and RIS with the paper's Section 4 error metric.
//!
//! Run with: `cargo run --release --example compare_profilers [workload]`

use tea_core::golden::GoldenReference;
use tea_core::nci::NciProfiler;
use tea_core::pics::{Granularity, UnitMap};
use tea_core::pics_error;
use tea_core::sampling::SampleTimer;
use tea_core::schemes::Scheme;
use tea_core::tagging::TaggingProfiler;
use tea_core::tea::TeaProfiler;
use tea_sim::core::Core;
use tea_sim::trace::Observer;
use tea_sim::SimConfig;
use tea_workloads::{all_workloads, Size};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "omnetpp".into());
    let workload = all_workloads(Size::Test)
        .into_iter()
        .find(|w| w.name == which)
        .unwrap_or_else(|| {
            eprintln!("unknown workload {which}; available:");
            for w in all_workloads(Size::Test) {
                eprintln!("  {} — {}", w.name, w.description);
            }
            std::process::exit(1);
        });

    let timer = || SampleTimer::with_jitter(512, 64, 9);
    let mut golden = GoldenReference::new();
    let mut tea = TeaProfiler::new(timer());
    let mut nci = NciProfiler::new(timer());
    let mut ibs = TaggingProfiler::ibs(timer());
    let mut spe = TaggingProfiler::spe(timer());
    let mut ris = TaggingProfiler::ris(timer());
    let stats = {
        let mut obs: Vec<&mut dyn Observer> =
            vec![&mut golden, &mut tea, &mut nci, &mut ibs, &mut spe, &mut ris];
        Core::new(&workload.program, SimConfig::default()).run(&mut obs)
    };

    println!(
        "{} — {}\n{} cycles, IPC {:.2}\n",
        workload.name,
        workload.description,
        stats.cycles,
        stats.ipc()
    );
    println!("{:<10} {:>10} {:>16} {:>16}", "scheme", "samples", "error (instr)", "error (func)");
    let units_i = UnitMap::new(&workload.program, Granularity::Instruction);
    let units_f = UnitMap::new(&workload.program, Granularity::Function);
    let rows: [(&str, Scheme, &tea_core::pics::Pics, u64); 5] = [
        ("TEA", Scheme::Tea, tea.pics(), tea.samples()),
        ("NCI-TEA", Scheme::NciTea, nci.pics(), nci.samples()),
        ("IBS", Scheme::Ibs, ibs.pics(), ibs.samples()),
        ("SPE", Scheme::Spe, spe.pics(), spe.samples()),
        ("RIS", Scheme::Ris, ris.pics(), ris.samples()),
    ];
    for (name, scheme, pics, samples) in rows {
        let e_i = pics_error(pics, golden.pics(), scheme.event_set(), &units_i);
        let e_f = pics_error(pics, golden.pics(), scheme.event_set(), &units_f);
        println!(
            "{:<10} {:>10} {:>15.1}% {:>15.1}%",
            name,
            samples,
            e_i * 100.0,
            e_f * 100.0
        );
    }
    println!("\nTime-proportional sampling (TEA) should win at both granularities.");
}
