//! The paper's nab case study as an application: TEA's PICS show that
//! `fsqrt.d` dominates *without* any event bits — the clue that
//! something earlier (the `frflags`/`fsflags` pipeline flushes, visible
//! as FL-EX on their own instructions) prevents its latency from being
//! hidden. Relaxing IEEE compliance removes the flushes.
//!
//! Run with: `cargo run --release --example nab_fastmath`

use tea_core::golden::GoldenReference;
use tea_core::render::render_top_instructions;
use tea_core::sampling::SampleTimer;
use tea_core::tea::TeaProfiler;
use tea_sim::core::Core;
use tea_sim::SimConfig;
use tea_workloads::nab::{self, MathMode};
use tea_workloads::Size;

fn main() {
    let size = Size::Test;
    let program = nab::program(size);
    let mut tea = TeaProfiler::new(SampleTimer::with_jitter(512, 64, 5));
    let mut golden = GoldenReference::new();
    let ieee = Core::new(&program, SimConfig::default()).run(&mut [&mut tea, &mut golden]);

    println!(
        "nab (IEEE-compliant): {} cycles, {} pipeline flushes",
        ieee.cycles, ieee.commit_flushes
    );
    println!("\nTEA's top instructions:");
    print!(
        "{}",
        render_top_instructions(&tea.pics().scaled_to(golden.pics().total()), &program, 4)
    );
    let fsqrt = nab::fsqrt_addr(size, MathMode::Ieee).unwrap();
    println!(
        "-> fsqrt.d at {fsqrt:#x} is critical with a mostly-Base stack: its latency is\n\
         exposed, and the FL-EX stacks on fsflags/frflags explain why — each one\n\
         flushes the pipeline, so the sqrt issues too late to overlap.\n"
    );

    for mode in [MathMode::FiniteMath, MathMode::FastMath] {
        let p = nab::program_with_mode(size, mode);
        let s = Core::new(&p, SimConfig::default()).run(&mut []);
        println!(
            "-{}: {} cycles, speedup {:.2}x (paper: {})",
            mode.name(),
            s.cycles,
            ieee.cycles as f64 / s.cycles as f64,
            match mode {
                MathMode::FiniteMath => "1.96x",
                _ => "2.45x",
            }
        );
    }
}
