//! Quickstart: write a small kernel, run it on the simulated
//! out-of-order core with TEA attached, and print its Per-Instruction
//! Cycle Stacks.
//!
//! Run with: `cargo run --release --example quickstart`

use tea_core::golden::GoldenReference;
use tea_core::render::render_top_instructions;
use tea_core::sampling::SampleTimer;
use tea_core::tea::TeaProfiler;
use tea_isa::asm::Asm;
use tea_isa::reg::Reg;
use tea_sim::core::Core;
use tea_sim::SimConfig;

fn main() -> Result<(), tea_isa::AsmError> {
    // A loop whose load misses the LLC: the classic "why is this slow?"
    let mut a = Asm::new();
    a.func("sum_strided");
    let top = a.new_label();
    a.li(Reg::A0, 0x100_0000); // array base
    a.li(Reg::T0, 0);
    a.li(Reg::T1, 50_000);
    a.bind(top);
    a.ld(Reg::T2, Reg::A0, 0); // the culprit
    a.add(Reg::A1, Reg::A1, Reg::T2);
    a.addi(Reg::A0, Reg::A0, 4096 + 256); // page+line stride
    a.addi(Reg::T0, Reg::T0, 1);
    a.blt(Reg::T0, Reg::T1, top);
    a.halt();
    let program = a.finish()?;

    // Attach TEA (sampling) and the golden reference (exact) and run.
    let mut tea = TeaProfiler::new(SampleTimer::default_experiment(1));
    let mut golden = GoldenReference::new();
    let stats = Core::new(&program, SimConfig::default()).run(&mut [&mut tea, &mut golden]);

    println!(
        "ran {} instructions in {} cycles (IPC {:.2}), {} TEA samples\n",
        stats.retired,
        stats.cycles,
        stats.ipc(),
        tea.samples()
    );
    let scaled = tea.pics().scaled_to(golden.pics().total());
    println!("TEA's Per-Instruction Cycle Stacks (top 3):");
    print!("{}", render_top_instructions(&scaled, &program, 3));
    println!("golden reference (exact):");
    print!("{}", render_top_instructions(golden.pics(), &program, 3));
    println!(
        "combined-event fraction: {:.1}% of eventful instructions",
        stats.combined_event_fraction() * 100.0
    );
    Ok(())
}
