//! Per-process PICS under multiprogramming: two processes time-share
//! the simulated core (round-robin, shared caches/TLBs/DRAM), each with
//! its own TEA profiler attached — the Section 3 claim that PID-tagged
//! samples make TEA work beyond single-programmed runs.
//!
//! Run with: `cargo run --release --example multiprocess`

use tea_core::render::render_top_instructions;
use tea_core::sampling::SampleTimer;
use tea_core::tea::TeaProfiler;
use tea_sim::system::System;
use tea_sim::trace::Observer;
use tea_sim::SimConfig;
use tea_workloads::{mcf, nab, Size};

fn main() {
    let prog_a = mcf::program(Size::Test);
    let prog_b = nab::program(Size::Test);
    let cfg = SimConfig::default();

    let mut sys = System::new(&[&prog_a, &prog_b], &cfg, 10_000, 100);
    let mut tea = [
        TeaProfiler::new(SampleTimer::with_jitter(512, 64, 31)),
        TeaProfiler::new(SampleTimer::with_jitter(512, 64, 32)),
    ];
    while let Some(pid) = sys.next_runnable() {
        let mut obs: Vec<&mut dyn Observer> = vec![&mut tea[pid]];
        sys.run_slice(pid, &mut obs);
    }

    println!(
        "system finished at global cycle {}; per-process cycles: mcf {}, nab {}\n",
        sys.global_clock(),
        sys.stats(0).cycles,
        sys.stats(1).cycles
    );
    for (pid, (name, program)) in [("mcf", &prog_a), ("nab", &prog_b)].into_iter().enumerate() {
        println!(
            "process {pid} ({name}): TEA top instructions ({} samples)",
            tea[pid].samples()
        );
        print!("{}", render_top_instructions(tea[pid].pics(), program, 2));
        println!();
    }
    println!("Each process's profile shows its own bottleneck (mcf's chase load,");
    println!("nab's fsqrt/flush pair) despite sharing the core and memory system.");
}
